// Figure 6: efficiency of GS vs GVM, measured — as in the paper — by the
// average number of view-matching calls consumed per query when the
// optimizer requests an estimate for every sub-plan. getSelectivity
// memoizes across sub-plan requests of the same query; GVM re-runs its
// greedy procedure from scratch on each request.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "condsel/harness/metrics.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

// Per-query measurements for the JSON artifact: what CI tracks per PR.
Json PerQueryJson(const WorkloadRunResult& r) {
  Json arr = Json::Array();
  for (const QueryRunResult& q : r.per_query) {
    arr.Push(Json::Object()
                 .Set("matcher_calls", q.matcher_calls)
                 .Set("estimate_seconds", q.estimate_seconds)
                 .Set("full_query_est", q.full_query_est)
                 .Set("avg_abs_error", q.avg_abs_error));
  }
  return arr;
}

}  // namespace

int main() {
  if (const char* missed = AllocHookSelfTest()) {
    std::fprintf(stderr, "alloc hook self-test failed: %s not counted\n",
                 missed);
    return 1;
  }
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 20);

  std::printf("\nFigure 6: avg view-matching calls per query\n\n");
  std::vector<std::string> header = {"workload", "#sub-plans", "GS calls",
                                     "GVM calls", "GVM/GS"};
  std::vector<std::vector<std::string>> rows;
  Json workloads = Json::Array();

  for (int j = 3; j <= 7; ++j) {
    const std::vector<Query> workload = env.Workload(j, num_queries);
    const SitPool pool = GenerateSitPool(workload, j, *env.builder);
    Runner runner(&env.catalog, env.evaluator.get());
    // Meter the estimate calls themselves; the whole-Run() windows below
    // stay as the harness-inclusive trace (truth evaluation and all).
    runner.set_alloc_counter(&AllocCount);

    double subplans = 0.0;
    for (const Query& q : workload) {
      subplans += static_cast<double>(SubPlanFamily(q).size());
    }
    subplans /= static_cast<double>(workload.size());

    const uint64_t gs_alloc0 = AllocCount();
    const WorkloadRunResult gs =
        runner.Run(workload, pool, Technique::kGsNInd);
    const double gs_allocs = static_cast<double>(AllocCount() - gs_alloc0) /
                             static_cast<double>(workload.size());
    const uint64_t gvm_alloc0 = AllocCount();
    const WorkloadRunResult gvm =
        runner.Run(workload, pool, Technique::kGvm);
    const double gvm_allocs =
        static_cast<double>(AllocCount() - gvm_alloc0) /
        static_cast<double>(workload.size());
    const double ratio =
        gvm.avg_matcher_calls / std::max(1.0, gs.avg_matcher_calls);
    rows.push_back(
        {std::to_string(j) + "-way", FormatDouble(subplans, 1),
         FormatDouble(gs.avg_matcher_calls, 1),
         FormatDouble(gvm.avg_matcher_calls, 1),
         FormatDouble(ratio, 2)});
    workloads.Push(
        Json::Object()
            .Set("num_joins", j)
            .Set("avg_subplans", subplans)
            .Set("gvm_over_gs_calls", ratio)
            .Set("gs",
                 Json::Object()
                     .Set("avg_matcher_calls", gs.avg_matcher_calls)
                     .Set("avg_estimate_ms", gs.avg_estimate_ms)
                     // Allocations inside the estimate calls only; the
                     // harness figure also counts the exact-cardinality
                     // evaluation each estimate is scored against.
                     .Set("allocs_per_estimate", gs.avg_allocs_per_estimate)
                     .Set("harness_allocs_per_query", gs_allocs)
                     .Set("per_query", PerQueryJson(gs)))
            .Set("gvm",
                 Json::Object()
                     .Set("avg_matcher_calls", gvm.avg_matcher_calls)
                     .Set("avg_estimate_ms", gvm.avg_estimate_ms)
                     .Set("allocs_per_estimate", gvm.avg_allocs_per_estimate)
                     .Set("harness_allocs_per_query", gvm_allocs)
                     .Set("per_query", PerQueryJson(gvm))));
  }
  PrintTable(header, rows);
  WriteBenchJson("BENCH_fig6_efficiency.json",
                 Json::Object()
                     .Set("bench", "fig6_efficiency")
                     .Set("num_queries", num_queries)
                     .Set("workloads", std::move(workloads)));
  std::printf(
      "\nExpected shape: GVM's per-request greedy re-computation costs a\n"
      "multiple of getSelectivity's memoized search, growing with the\n"
      "number of sub-plans per query.\n");
  return 0;
}
