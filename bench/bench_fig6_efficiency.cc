// Figure 6: efficiency of GS vs GVM, measured — as in the paper — by the
// average number of view-matching calls consumed per query when the
// optimizer requests an estimate for every sub-plan. getSelectivity
// memoizes across sub-plan requests of the same query; GVM re-runs its
// greedy procedure from scratch on each request.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "condsel/harness/metrics.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 20);

  std::printf("\nFigure 6: avg view-matching calls per query\n\n");
  std::vector<std::string> header = {"workload", "#sub-plans", "GS calls",
                                     "GVM calls", "GVM/GS"};
  std::vector<std::vector<std::string>> rows;

  for (int j = 3; j <= 7; ++j) {
    const std::vector<Query> workload = env.Workload(j, num_queries);
    const SitPool pool = GenerateSitPool(workload, j, *env.builder);
    Runner runner(&env.catalog, env.evaluator.get());

    double subplans = 0.0;
    for (const Query& q : workload) {
      subplans += static_cast<double>(SubPlanFamily(q).size());
    }
    subplans /= static_cast<double>(workload.size());

    const WorkloadRunResult gs =
        runner.Run(workload, pool, Technique::kGsNInd);
    const WorkloadRunResult gvm =
        runner.Run(workload, pool, Technique::kGvm);
    rows.push_back(
        {std::to_string(j) + "-way", FormatDouble(subplans, 1),
         FormatDouble(gs.avg_matcher_calls, 1),
         FormatDouble(gvm.avg_matcher_calls, 1),
         FormatDouble(gvm.avg_matcher_calls /
                          std::max(1.0, gs.avg_matcher_calls),
                      2)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: GVM's per-request greedy re-computation costs a\n"
      "multiple of getSelectivity's memoized search, growing with the\n"
      "number of sub-plans per query.\n");
  return 0;
}
