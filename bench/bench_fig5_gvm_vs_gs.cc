// Figure 5: per-query absolute cardinality error, GVM (x axis) vs
// getSelectivity (y axis), over a mixed workload of 3- to 7-way join
// queries. The paper's claim: every point lies under the x = y line.
//
// We emit the scatter for both GS-nInd (the paper's Fig. 5 pairing, same
// error metric as GVM's greedy) and GS-Diff. See EXPERIMENTS.md for the
// discussion of GS-nInd points that can land above the line on sparse
// pools with strongly join-correlated data.

#include <cstdio>

#include "bench_common.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int queries_per_j = EnvInt("CONDSEL_QUERIES", 10);

  // Mixed 3..7-way join workload.
  std::vector<Query> workload;
  for (int j = 3; j <= 7; ++j) {
    for (Query& q : env.Workload(j, queries_per_j)) {
      workload.push_back(std::move(q));
    }
  }
  std::printf("# %zu queries (3..7-way joins)\n", workload.size());

  // Pool with join expressions up to 3 joins: rich enough to matter,
  // sparse enough that GVM's compatibility constraint binds.
  const SitPool pool = GenerateSitPool(workload, 3, *env.builder);
  std::printf("# SIT pool J3: %d SITs\n\n", pool.size());

  Runner runner(&env.catalog, env.evaluator.get());
  const WorkloadRunResult gvm = runner.Run(workload, pool, Technique::kGvm);
  const WorkloadRunResult gsn =
      runner.Run(workload, pool, Technique::kGsNInd);
  const WorkloadRunResult gsd =
      runner.Run(workload, pool, Technique::kGsDiff);

  std::printf("%-6s %14s %14s %14s\n", "query", "GVM err (x)",
              "GS-nInd (y)", "GS-Diff (y)");
  int nind_below = 0, diff_below = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    std::printf("q%-5zu %14.2f %14.2f %14.2f\n", i,
                gvm.per_query[i].avg_abs_error,
                gsn.per_query[i].avg_abs_error,
                gsd.per_query[i].avg_abs_error);
    nind_below += gsn.per_query[i].avg_abs_error <=
                  gvm.per_query[i].avg_abs_error + 1e-9;
    diff_below += gsd.per_query[i].avg_abs_error <=
                  gvm.per_query[i].avg_abs_error + 1e-9;
  }
  std::printf(
      "\npoints on or below x=y: GS-nInd %d/%zu, GS-Diff %d/%zu\n"
      "workload averages: GVM %.2f, GS-nInd %.2f, GS-Diff %.2f\n",
      nind_below, workload.size(), diff_below, workload.size(),
      gvm.avg_abs_error, gsn.avg_abs_error, gsd.avg_abs_error);
  return 0;
}
