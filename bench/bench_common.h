// Shared setup for the figure-reproduction benches: the Section 5
// snowflake database, workloads, and SIT pools.
//
// Scale knobs (environment variables):
//   CONDSEL_SCALE    table-size scale; 1.0 = the paper's 1K..1M rows.
//                    Bench default is 0.01 to fit a single-core CI run.
//   CONDSEL_QUERIES  queries per workload (paper: 100).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/report.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace bench {

inline int EnvInt(const char* name, int def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

inline double EnvDouble(const char* name, double def) {
  if (const char* s = std::getenv(name)) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return def;
}

struct BenchEnv {
  Catalog catalog;
  CardinalityCache cache;
  std::unique_ptr<Evaluator> evaluator;
  std::unique_ptr<SitBuilder> builder;

  explicit BenchEnv(double default_scale = 0.01, double zipf_theta = 1.0) {
    SnowflakeOptions opt;
    opt.scale = EnvDouble("CONDSEL_SCALE", default_scale);
    opt.zipf_theta = zipf_theta;
    std::printf("# snowflake scale=%.4g (CONDSEL_SCALE to change)\n",
                opt.scale);
    catalog = BuildSnowflake(opt);
    evaluator = std::make_unique<Evaluator>(&catalog, &cache);
    builder = std::make_unique<SitBuilder>(evaluator.get(),
                                           SitBuildOptions{});
  }

  std::vector<Query> Workload(int num_joins, int num_queries,
                              uint64_t seed = 1234) {
    WorkloadOptions wopt;
    wopt.num_queries = num_queries;
    wopt.num_joins = num_joins;
    wopt.num_filters = 3;
    wopt.seed = seed + static_cast<uint64_t>(num_joins) * 101;
    return GenerateWorkload(catalog, evaluator.get(), wopt);
  }
};

}  // namespace bench
}  // namespace condsel

