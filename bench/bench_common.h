// Shared setup for the figure-reproduction benches: the Section 5
// snowflake database, workloads, and SIT pools.
//
// Scale knobs (environment variables):
//   CONDSEL_SCALE    table-size scale; 1.0 = the paper's 1K..1M rows.
//                    Bench default is 0.01 to fit a single-core CI run.
//   CONDSEL_QUERIES  queries per workload (paper: 100).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/report.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace bench {

// Allocation counting: every BENCH_*.json records allocs/estimate
// alongside latency, the dynamic baseline the arena / dense-memo work
// will push toward zero (tools/alloc_budget.toml is the static census
// of the same hot path). The counter works by replacing the
// program-global operator new/delete below — each bench executable is a
// single translation unit including this header, and a link-time
// replacement covers allocations made inside libcondsel too. Relaxed
// atomic increments cost ~1ns per allocation, cheap enough to count
// every allocation rather than sample.
inline std::atomic<uint64_t> g_alloc_count{0};

inline uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

inline int EnvInt(const char* name, int def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

inline double EnvDouble(const char* name, double def) {
  if (const char* s = std::getenv(name)) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return def;
}

// Minimal JSON value for the machine-readable BENCH_*.json artifacts —
// the per-PR perf trajectory the CI job uploads. Insertion order is
// preserved and numbers use %.17g, so artifact diffs are stable across
// runs with unchanged measurements.
class Json {
 public:
  Json() = default;
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}           // NOLINT
  Json(double v) : kind_(Kind::kNumber), num_(v) {}        // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(const char* v) : kind_(Kind::kString), str_(v) {}   // NOLINT
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Json& Set(std::string key, Json value) {
    fields_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Json& Push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    DumpTo(&out, indent);
    return out;
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static void Escape(const std::string& s, std::string* out) {
    out->push_back('"');
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out->push_back('\\');
        out->push_back(c);
      } else if (c == '\n') {
        *out += "\\n";
      } else {
        out->push_back(c);
      }
    }
    out->push_back('"');
  }

  void DumpTo(std::string* out, int indent) const {
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNull:
        *out += "null";
        break;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        *out += buf;
        break;
      }
      case Kind::kString:
        Escape(str_, out);
        break;
      case Kind::kArray:
        if (items_.empty()) {
          *out += "[]";
          break;
        }
        *out += "[\n";
        for (size_t i = 0; i < items_.size(); ++i) {
          *out += inner;
          items_[i].DumpTo(out, indent + 1);
          if (i + 1 < items_.size()) out->push_back(',');
          out->push_back('\n');
        }
        *out += pad + "]";
        break;
      case Kind::kObject:
        if (fields_.empty()) {
          *out += "{}";
          break;
        }
        *out += "{\n";
        for (size_t i = 0; i < fields_.size(); ++i) {
          *out += inner;
          Escape(fields_[i].first, out);
          *out += ": ";
          fields_[i].second.DumpTo(out, indent + 1);
          if (i + 1 < fields_.size()) out->push_back(',');
          out->push_back('\n');
        }
        *out += pad + "}";
        break;
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

// Writes `root` to `filename` in the working directory (CI uploads the
// BENCH_*.json files as artifacts) and tells the human where it went.
inline void WriteBenchJson(const std::string& filename, const Json& root) {
  std::ofstream out(filename);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", filename.c_str());
    return;
  }
  out << root.Dump() << "\n";
  std::printf("# wrote %s\n", filename.c_str());
}

struct BenchEnv {
  Catalog catalog;
  CardinalityCache cache;
  std::unique_ptr<Evaluator> evaluator;
  std::unique_ptr<SitBuilder> builder;

  explicit BenchEnv(double default_scale = 0.01, double zipf_theta = 1.0) {
    SnowflakeOptions opt;
    opt.scale = EnvDouble("CONDSEL_SCALE", default_scale);
    opt.zipf_theta = zipf_theta;
    std::printf("# snowflake scale=%.4g (CONDSEL_SCALE to change)\n",
                opt.scale);
    catalog = BuildSnowflake(opt);
    evaluator = std::make_unique<Evaluator>(&catalog, &cache);
    builder = std::make_unique<SitBuilder>(evaluator.get(),
                                           SitBuildOptions{});
  }

  std::vector<Query> Workload(int num_joins, int num_queries,
                              uint64_t seed = 1234) {
    WorkloadOptions wopt;
    wopt.num_queries = num_queries;
    wopt.num_joins = num_joins;
    wopt.num_filters = 3;
    wopt.seed = seed + static_cast<uint64_t>(num_joins) * 101;
    return GenerateWorkload(catalog, evaluator.get(), wopt);
  }
};

// Allocates through every replaced operator-new form below, checking the
// counter moves for each. Returns nullptr on success, else the name of
// the first form whose allocation the counter missed — benches CHECK this
// at startup so allocs_per_estimate can't silently undercount, and
// tests/bench_alloc_hook_test.cc asserts it per form. Direct calls to the
// operator functions (not new-expressions) are used because the compiler
// may legally elide paired new/delete expressions, which would make the
// probe vacuous.
inline const char* AllocHookSelfTest() {
  struct Probe {
    const char* name;
    void* (*alloc)();
    void (*free)(void*);
  };
  static const Probe kProbes[] = {
      {"operator new", []() { return ::operator new(32); },
       [](void* p) { ::operator delete(p); }},
      {"operator new[]", []() { return ::operator new[](32); },
       [](void* p) { ::operator delete[](p); }},
      {"operator new(nothrow)",
       []() { return ::operator new(32, std::nothrow); },
       [](void* p) { ::operator delete(p, std::nothrow); }},
      {"operator new[](nothrow)",
       []() { return ::operator new[](32, std::nothrow); },
       [](void* p) { ::operator delete[](p, std::nothrow); }},
      {"operator new(align)",
       []() { return ::operator new(64, std::align_val_t{64}); },
       [](void* p) { ::operator delete(p, std::align_val_t{64}); }},
      {"operator new[](align)",
       []() { return ::operator new[](64, std::align_val_t{64}); },
       [](void* p) { ::operator delete[](p, std::align_val_t{64}); }},
      {"operator new(align, nothrow)",
       []() {
         return ::operator new(64, std::align_val_t{64}, std::nothrow);
       },
       [](void* p) {
         ::operator delete(p, std::align_val_t{64}, std::nothrow);
       }},
      {"operator new[](align, nothrow)",
       []() {
         return ::operator new[](64, std::align_val_t{64}, std::nothrow);
       },
       [](void* p) {
         ::operator delete[](p, std::align_val_t{64}, std::nothrow);
       }},
  };
  for (const Probe& probe : kProbes) {
    const uint64_t before = AllocCount();
    void* p = probe.alloc();
    const bool counted = AllocCount() > before;
    if (p != nullptr) probe.free(p);
    if (p == nullptr || !counted) return probe.name;
  }
  return nullptr;
}

}  // namespace bench
}  // namespace condsel

// Program-global allocation hooks backing AllocCount() above. Every
// replaceable allocation form is counted: ordinary, array, nothrow, and
// over-aligned. The over-aligned forms must be replaced explicitly —
// libstdc++'s defaults go straight to aligned_alloc rather than
// forwarding to ordinary operator new, so leaving them out silently
// undercounts every allocation of an alignas(>16) type.
// AllocHookSelfTest() above exercises each form.
void* operator new(std::size_t size) {
  condsel::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  condsel::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  condsel::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // posix_memalign wants alignment ≥ sizeof(void*); align_val_t is
  // already a power of two by construction.
  std::size_t a = static_cast<std::size_t>(align);
  if (a < sizeof(void*)) a = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, a, size ? size : 1) == 0) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  condsel::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  std::size_t a = static_cast<std::size_t>(align);
  if (a < sizeof(void*)) a = sizeof(void*);
  void* p = nullptr;
  return posix_memalign(&p, a, size ? size : 1) == 0 ? p : nullptr;
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& tag) noexcept {
  return ::operator new(size, align, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

