// Ablation (extension): multidimensional SITs for correlated filters.
//
// The paper's Assumption 1 argues unidimensional histograms suffice when
// attributes are independent; this bench quantifies the converse. A table
// carries filter-attribute pairs with controlled correlation; queries
// place range filters on both attributes (plus a join). We compare pools
// with and without the 2-d SIT over the pair, sweeping the correlation
// noise from "deterministic dependence" to "independent".

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  std::printf(
      "multidimensional-SIT ablation: two correlated filters + join\n\n");
  std::vector<std::string> header = {"corr noise", "pair diff",
                                     "err (1-d pool)", "err (+2-d SIT)",
                                     "improvement"};
  std::vector<std::vector<std::string>> rows;

  for (const double noise : {0.0, 0.05, 0.15, 0.40, 1.0}) {
    // Build: fact(a, b, fk) with b tracking a up to `noise`; dim(pk, c).
    Catalog catalog;
    Rng rng(97);
    {
      TableSchema s;
      s.name = "fact";
      s.columns = {{"a", 0, 199, false},
                   {"b", 0, 199, false},
                   {"fk", 0, 99, true}};
      Table t(s);
      const int64_t amp = static_cast<int64_t>(noise * 200.0);
      for (int64_t i = 0; i < 20000; ++i) {
        const int64_t a = rng.NextInRange(0, 199);
        int64_t b = a;
        if (amp > 0) b += rng.NextInRange(-amp, amp);
        t.AppendRow({a, std::clamp<int64_t>(b, 0, 199),
                     rng.NextInRange(0, 99)});
      }
      catalog.AddTable(std::move(t));
    }
    {
      TableSchema s;
      s.name = "dim";
      s.columns = {{"pk", 0, 99, true}, {"c", 0, 99, false}};
      Table t(s);
      for (int64_t i = 0; i < 100; ++i) {
        t.AppendRow({i, rng.NextInRange(0, 99)});
      }
      catalog.AddTable(std::move(t));
    }
    CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);
    SitBuilder builder(&evaluator, SitBuildOptions{});

    const ColumnRef fa = catalog.ResolveColumn("fact", "a");
    const ColumnRef fb = catalog.ResolveColumn("fact", "b");
    const ColumnRef fk = catalog.ResolveColumn("fact", "fk");
    const ColumnRef pk = catalog.ResolveColumn("dim", "pk");

    SitPool pool_1d;
    for (const ColumnRef& c : {fa, fb, fk, pk}) {
      pool_1d.Add(builder.Build(c, {}));
    }
    SitPool pool_2d = pool_1d;
    const Sit pair_sit = builder.Build2d(fa, fb, {});
    pool_2d.Add(pair_sit);

    // Queries: sliding correlated boxes plus the join.
    DiffError diff;
    double err_1d = 0.0, err_2d = 0.0;
    int n = 0;
    for (int64_t lo = 0; lo <= 160; lo += 20) {
      const Query q({Predicate::Filter(fa, lo, lo + 39),
                     Predicate::Filter(fb, lo, lo + 39),
                     Predicate::Join(fk, pk)});
      const double cross = 20000.0 * 100.0;
      const double truth =
          evaluator.Cardinality(q, q.all_predicates());
      for (const SitPool* pool : {&pool_1d, &pool_2d}) {
        SitMatcher matcher(pool);
        matcher.BindQuery(&q);
        AtomicSelectivityProvider approx(&matcher, &diff);
        GetSelectivity gs(&q, &approx);
        const double est =
            gs.Compute(q.all_predicates()).selectivity * cross;
        (pool == &pool_1d ? err_1d : err_2d) += std::abs(est - truth);
      }
      ++n;
    }
    err_1d /= n;
    err_2d /= n;
    char noise_s[16];
    std::snprintf(noise_s, sizeof(noise_s), "%.2f", noise);
    rows.push_back({noise_s, FormatDouble(pair_sit.diff, 3),
                    FormatDouble(err_1d, 1), FormatDouble(err_2d, 1),
                    FormatDouble(err_2d > 0 ? err_1d / err_2d : 1.0, 1)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: the tighter the correlation (high pair diff), the\n"
      "larger the win from the 2-d SIT; at independence (noise 1.0) the\n"
      "unidimensional pool is already adequate (Assumption 1).\n");
  return 0;
}
