// Multi-threaded estimation throughput over shared statistics.
//
// N threads run back-to-back getSelectivity passes against one shared,
// immutable (catalog, pool, matcher, provider) set — the multi-core
// follow-up to the sequential overhead bench: the provider's Score path
// is lock-free over shared statistics, so estimates/sec should scale
// with threads until memory bandwidth, not a lock, is the ceiling.
// Partitioned pools (built through PartStatsMaintainer) run the
// merge-at-Score loop, so this also prices the per-part merge under
// concurrency.
//
// Emits BENCH_throughput.json for the CI bench-artifacts trajectory.
//
// Scale knobs: CONDSEL_SCALE, CONDSEL_QUERIES (bench_common.h), plus
// CONDSEL_THROUGHPUT_ESTIMATES (estimates per thread, default 50).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "condsel/selectivity/atomic_provider.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {
namespace bench {
namespace {

struct Measurement {
  double wall_seconds = 0.0;
  uint64_t estimates = 0;
  uint64_t allocs = 0;
};

// Each query gets one matcher/provider pair bound once up front; the
// threads then share them read-only, exactly how the service shares a
// snapshot epoch across concurrent submits.
struct BoundQuery {
  const Query* query;
  std::unique_ptr<SitMatcher> matcher;
  std::unique_ptr<AtomicSelectivityProvider> provider;
};

Measurement Run(const std::vector<BoundQuery>& bound, int threads,
                int estimates_per_thread) {
  std::atomic<uint64_t> done{0};
  const uint64_t alloc0 = AllocCount();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < estimates_per_thread; ++i) {
        const BoundQuery& b = bound[(t + i) % bound.size()];
        // A fresh GetSelectivity per estimate: back-to-back cold passes,
        // not one warm memo amortized over the loop.
        GetSelectivity gs(b.query, b.provider.get(), nullptr);
        const SelEstimate e = gs.Compute(b.query->all_predicates());
        if (e.selectivity >= 0.0) {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Measurement m;
  m.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  m.estimates = done.load();
  m.allocs = AllocCount() - alloc0;
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace condsel

int main() {
  using namespace condsel;         // NOLINT: bench brevity
  using namespace condsel::bench;  // NOLINT: bench brevity

  if (const char* missed = AllocHookSelfTest()) {
    std::fprintf(stderr, "alloc hook self-test failed: %s not counted\n",
                 missed);
    return 1;
  }
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 6);
  const int estimates = EnvInt("CONDSEL_THROUGHPUT_ESTIMATES", 50);
  const std::vector<Query> workload = env.Workload(3, num_queries);
  const SitPool pool = GenerateSitPool(workload, 2, *env.builder);
  DiffError diff;

  std::vector<BoundQuery> bound;
  for (const Query& q : workload) {
    BoundQuery b;
    b.query = &q;
    b.matcher = std::make_unique<SitMatcher>(&pool);
    b.matcher->BindQuery(&q);
    b.provider = std::make_unique<AtomicSelectivityProvider>(b.matcher.get(),
                                                             &diff);
    bound.push_back(std::move(b));
  }

  Json sweeps = Json::Array();
  double single_thread_eps = 0.0;
  std::printf("%-8s %14s %12s %10s %14s\n", "threads", "estimates/s",
              "wall(s)", "speedup", "allocs/est");
  for (const int threads : {1, 2, 4, 8}) {
    const Measurement m = Run(bound, threads, estimates);
    const double eps =
        m.wall_seconds > 0.0
            ? static_cast<double>(m.estimates) / m.wall_seconds
            : 0.0;
    if (threads == 1) single_thread_eps = eps;
    const double speedup =
        single_thread_eps > 0.0 ? eps / single_thread_eps : 0.0;
    const double allocs_per_estimate =
        m.estimates > 0
            ? static_cast<double>(m.allocs) / static_cast<double>(m.estimates)
            : 0.0;
    std::printf("%-8d %14.0f %12.4f %10.2f %14.1f\n", threads, eps,
                m.wall_seconds, speedup, allocs_per_estimate);

    Json entry = Json::Object();
    entry.Set("threads", threads)
        .Set("estimates", m.estimates)
        .Set("wall_seconds", m.wall_seconds)
        .Set("estimates_per_second", eps)
        .Set("speedup_vs_single_thread", speedup)
        .Set("allocs_per_estimate", allocs_per_estimate);
    sweeps.Push(std::move(entry));
  }

  Json root = Json::Object();
  root.Set("bench", "throughput")
      .Set("queries", num_queries)
      .Set("estimates_per_thread", estimates)
      .Set("pool_size", static_cast<uint64_t>(pool.size()))
      .Set("sweeps", std::move(sweeps));
  WriteBenchJson("BENCH_throughput.json", root);
  return 0;
}
