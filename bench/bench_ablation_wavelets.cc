// Ablation (extension): estimator families under one space budget.
//
// MaxDiff histograms vs Haar wavelet synopses vs reservoir samples on
// the same task — range selectivity over base attributes with varying
// skew — at matched budgets (buckets ~= coefficients ~= rows/4, roughly
// equal bytes). Complements bench_ablation_samples (which conditions on
// join expressions).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/common/zipf.h"
#include "condsel/histogram/builders.h"
#include "condsel/sampling/sample.h"
#include "condsel/wavelet/wavelet.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

double ExactRangeSel(const std::vector<int64_t>& values, double total,
                     int64_t lo, int64_t hi) {
  size_t c = 0;
  for (int64_t v : values) c += (v >= lo && v <= hi);
  return static_cast<double>(c) / total;
}

}  // namespace

int main() {
  std::printf(
      "estimator families: avg |est - true| over 60 random ranges\n\n");
  std::vector<std::string> header = {"skew theta", "budget", "maxdiff",
                                     "wavelet", "sample(4x rows)"};
  std::vector<std::vector<std::string>> rows;

  Rng rng(2025);
  for (const double theta : {0.0, 0.8, 1.4}) {
    std::vector<int64_t> vals(60000);
    ZipfSampler z(2000, theta);
    for (auto& v : vals) v = z.Next(rng);
    const double total = static_cast<double>(vals.size());

    for (const int budget : {16, 64, 256}) {
      const Histogram h = BuildMaxDiff(vals, total, budget);
      const WaveletSynopsis w = BuildWavelet(vals, total, budget);
      // A histogram bucket stores 4 numbers; give the sample 4x rows.
      Rng srng(7);
      std::vector<int64_t> sample;
      for (int i = 0; i < budget * 4; ++i) {
        sample.push_back(
            vals[static_cast<size_t>(srng.NextBelow(vals.size()))]);
      }

      double e_h = 0.0, e_w = 0.0, e_s = 0.0;
      const int kRanges = 60;
      Rng qrng(13);
      for (int i = 0; i < kRanges; ++i) {
        const int64_t lo = qrng.NextInRange(0, 1900);
        const int64_t hi = lo + qrng.NextInRange(10, 400);
        const double truth = ExactRangeSel(vals, total, lo, hi);
        e_h += std::abs(h.RangeSelectivity(lo, hi) - truth);
        e_w += std::abs(w.RangeSelectivity(lo, hi) - truth);
        e_s += std::abs(ExactRangeSel(sample,
                                      static_cast<double>(sample.size()),
                                      lo, hi) -
                        truth);
      }
      char theta_s[16];
      std::snprintf(theta_s, sizeof(theta_s), "%.1f", theta);
      rows.push_back({theta_s, std::to_string(budget),
                      FormatDouble(e_h / kRanges, 4),
                      FormatDouble(e_w / kRanges, 4),
                      FormatDouble(e_s / kRanges, 4)});
    }
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: histograms and wavelets are both near-exact on\n"
      "uniform data; on Zipfian data the energy concentrates in few Haar\n"
      "coefficients, letting wavelets beat MaxDiff at very small budgets,\n"
      "while both converge once buckets ~ distinct spikes; sample error\n"
      "tracks ~1/sqrt(rows) regardless of skew.\n");
  return 0;
}
