// Extension: budget-constrained SIT selection.
//
// The advisor greedily materializes the SITs that most reduce the
// workload's Diff score (no ground truth consulted). This bench tracks,
// per budget step, the *true* average absolute error — validating that a
// handful of well-chosen SITs capture most of the full pool's benefit.

#include <cstdio>

#include "bench_common.h"
#include "condsel/sit/sit_advisor.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 10);
  const std::vector<Query> workload = env.Workload(5, num_queries);
  Runner runner(&env.catalog, env.evaluator.get());

  AdvisorOptions opt;
  opt.budget = 12;
  opt.max_join_preds = 3;
  const AdvisorResult advised = AdviseSits(workload, *env.builder, opt);

  const SitPool bases = GenerateSitPool(workload, 0, *env.builder);
  const SitPool full = GenerateSitPool(workload, 3, *env.builder);
  const double base_err =
      runner.Run(workload, bases, Technique::kGsDiff).avg_abs_error;
  const double full_err =
      runner.Run(workload, full, Technique::kGsDiff).avg_abs_error;

  std::printf("\nSIT advisor on a 5-way join workload (%d queries)\n",
              num_queries);
  std::printf("base histograms only: err %.2f; full J3 pool (%d SITs): "
              "err %.2f\n\n",
              base_err, full.size(), full_err);

  std::vector<std::string> header = {"step", "SIT chosen", "Diff score",
                                     "true err", "gap closed"};
  std::vector<std::vector<std::string>> rows;
  // Re-run the true error for each prefix of the advisor's choices.
  SitPool prefix = bases;
  int step = 0;
  for (const AdvisorStep& s : advised.steps) {
    prefix.Add(advised.pool.sit(s.chosen));
    const double err =
        runner.Run(workload, prefix, Technique::kGsDiff).avg_abs_error;
    const double closed =
        base_err - full_err > 0
            ? (base_err - err) / (base_err - full_err)
            : 1.0;
    rows.push_back({std::to_string(++step),
                    advised.pool.sit(s.chosen).ToString(env.catalog),
                    FormatDouble(s.score_after, 2), FormatDouble(err, 2),
                    FormatDouble(100.0 * closed, 0) + "%"});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: the first few chosen SITs close most of the gap\n"
      "between base-only and the full pool, guided purely by the Diff\n"
      "statistic (no query execution needed).\n");
  return 0;
}
