// Serving throughput of the EstimationService front end.
//
// Drives one in-process service from concurrent session threads and
// reports QPS, latency quantiles, and the overload/degradation telemetry
// for three regimes:
//   clean       no faults, generous admission — the raw serving ceiling;
//   overloaded  admission capped well below the offered load — measures
//               shedding behaviour, not queue collapse;
//   faulted     transient lookup faults pulse while epochs refresh —
//               retry and degradation-ladder overhead under chaos.
//
// Emits BENCH_service_qps.json for the CI bench-artifacts trajectory.
//
// Scale knobs: CONDSEL_SCALE, CONDSEL_QUERIES (bench_common.h), plus
// CONDSEL_SERVICE_SUBMITS (submits per session thread, default 40).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "condsel/common/fault_injector.h"
#include "condsel/service/service.h"

namespace condsel {
namespace bench {
namespace {

struct Regime {
  const char* name;
  int session_threads;
  int max_concurrent;
  int queue_limit;
  bool pulse_faults;
  bool refresh_epochs;
};

struct Measurement {
  double wall_seconds = 0.0;
  ServiceStatsSnapshot stats;
  size_t live_epochs = 0;
};

Measurement RunRegime(const Regime& regime, const Catalog& catalog,
                      const SitPool& pool,
                      const std::vector<Query>& workload, int submits) {
  ServiceOptions options;
  options.admission.max_concurrent = regime.max_concurrent;
  options.admission.queue_limit = regime.queue_limit;
  options.retry.initial_backoff_seconds = 1e-4;
  options.breaker.open_after = 2;
  options.breaker.close_after = 2;
  EstimationService service(options);
  StatusOr<uint64_t> seed = service.Refresh(catalog, pool);
  if (!seed.ok()) {
    std::fprintf(stderr, "seed refresh failed: %s\n",
                 seed.status().ToString().c_str());
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  std::thread fault_pulser;
  if (regime.pulse_faults) {
    fault_pulser = std::thread([&]() {
      int pulse = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (pulse++ % 2 == 0) {
          const ScopedFault fault(Fault::kThrowAtomicLookup);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  std::thread refresher;
  if (regime.refresh_epochs) {
    refresher = std::thread([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        StatusIgnored(service.Refresh(catalog, pool));
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  for (int t = 0; t < regime.session_threads; ++t) {
    sessions.emplace_back([&, t]() {
      const std::string tenant = "tenant-" + std::to_string(t % 4);
      for (int i = 0; i < submits; ++i) {
        StatusIgnored(
            service.Submit(tenant, workload[(t + i) % workload.size()]));
      }
    });
  }
  for (std::thread& th : sessions) th.join();
  const auto end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  if (fault_pulser.joinable()) fault_pulser.join();
  if (refresher.joinable()) refresher.join();

  Measurement m;
  m.wall_seconds = std::chrono::duration<double>(end - start).count();
  m.stats = service.Stats();
  m.live_epochs = service.live_epochs();
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace condsel

int main() {
  using namespace condsel;        // NOLINT: bench brevity
  using namespace condsel::bench; // NOLINT: bench brevity

  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 6);
  const int submits = EnvInt("CONDSEL_SERVICE_SUBMITS", 40);
  const std::vector<Query> workload = env.Workload(3, num_queries);
  const SitPool pool = GenerateSitPool(workload, 2, *env.builder);

  const Regime kRegimes[] = {
      {"clean", 4, 8, 16, false, false},
      {"overloaded", 8, 2, 1, false, false},
      {"faulted", 8, 4, 4, true, true},
  };

  Json regimes = Json::Array();
  std::printf(
      "%-12s %8s %10s %10s %10s %8s %8s %8s\n", "regime", "qps",
      "p50(ms)", "p99(ms)", "shed", "retries", "degr", "torn");
  for (const Regime& regime : kRegimes) {
    const uint64_t alloc0 = AllocCount();
    const Measurement m =
        RunRegime(regime, env.catalog, pool, workload, submits);
    const double allocs_per_submit =
        m.stats.submitted > 0
            ? static_cast<double>(AllocCount() - alloc0) /
                  static_cast<double>(m.stats.submitted)
            : 0.0;
    const double qps =
        m.wall_seconds > 0.0
            ? static_cast<double>(m.stats.submitted) / m.wall_seconds
            : 0.0;
    const uint64_t shed = m.stats.rejected_quota +
                          m.stats.rejected_queue_full +
                          m.stats.queue_timeouts;
    const uint64_t degraded_submissions =
        m.stats.mode_submissions[1] + m.stats.mode_submissions[2];
    std::printf("%-12s %8.0f %10.3f %10.3f %10llu %8llu %8llu %8llu\n",
                regime.name, qps, m.stats.latency_p50_seconds * 1000.0,
                m.stats.latency_p99_seconds * 1000.0,
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(m.stats.retries),
                static_cast<unsigned long long>(degraded_submissions),
                static_cast<unsigned long long>(m.stats.incoherent_snapshots));

    Json entry = Json::Object();
    entry.Set("regime", regime.name)
        .Set("session_threads", regime.session_threads)
        .Set("max_concurrent", regime.max_concurrent)
        .Set("queue_limit", regime.queue_limit)
        .Set("wall_seconds", m.wall_seconds)
        .Set("qps", qps)
        .Set("submitted", m.stats.submitted)
        .Set("completed", m.stats.completed)
        .Set("failed", m.stats.failed)
        .Set("shed", shed)
        .Set("retries", m.stats.retries)
        .Set("transient_faults", m.stats.transient_faults)
        .Set("mode_full", m.stats.mode_submissions[0])
        .Set("mode_capped", m.stats.mode_submissions[1])
        .Set("mode_independence", m.stats.mode_submissions[2])
        .Set("step_downs", m.stats.step_downs)
        .Set("step_ups", m.stats.step_ups)
        .Set("epochs_published", m.stats.epochs_published)
        .Set("failed_swaps", m.stats.failed_swaps)
        .Set("live_epochs", static_cast<uint64_t>(m.live_epochs))
        .Set("incoherent_snapshots", m.stats.incoherent_snapshots)
        .Set("p50_seconds", m.stats.latency_p50_seconds)
        .Set("p99_seconds", m.stats.latency_p99_seconds)
        .Set("allocs_per_estimate", allocs_per_submit)
        .Set("mean_seconds",
             m.stats.latency_count > 0
                 ? m.stats.latency_total_seconds /
                       static_cast<double>(m.stats.latency_count)
                 : 0.0);
    regimes.Push(std::move(entry));
  }

  Json root = Json::Object();
  root.Set("bench", "service_qps")
      .Set("queries", num_queries)
      .Set("submits_per_thread", submits)
      .Set("regimes", std::move(regimes));
  WriteBenchJson("BENCH_service_qps.json", root);
  return 0;
}
