// Offline statistics pipeline: build once, persist, load, estimate.
//
// Mirrors how a deployment would use the library: an offline job
// generates the database (here: synthesizes it), runs the SIT advisor
// against a training workload, and writes catalog + SIT pool to disk;
// the "optimizer process" later loads both and serves estimates without
// ever touching the data again.
//
//   $ ./offline_stats [workdir]

#include <cstdio>
#include <string>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/runner.h"
#include "condsel/io/serialize.h"
#include "condsel/sit/sit_advisor.h"

using namespace condsel;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string catalog_path = dir + "/condsel_demo_catalog.bin";
  const std::string pool_path = dir + "/condsel_demo_pool.bin";

  // ---- offline job -------------------------------------------------
  {
    SnowflakeOptions opt;
    opt.scale = 0.005;
    Catalog catalog = BuildSnowflake(opt);
    CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);

    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.num_joins = 3;
    const std::vector<Query> training =
        GenerateWorkload(catalog, &evaluator, wopt);

    SitBuilder builder(&evaluator, SitBuildOptions{});
    AdvisorOptions aopt;
    aopt.budget = 8;
    aopt.max_join_preds = 2;
    const AdvisorResult advised = AdviseSits(training, builder, aopt);

    IoResult w = WriteCatalog(catalog, catalog_path);
    if (!w.ok) {
      std::printf("catalog write failed: %s\n", w.error.c_str());
      return 1;
    }
    w = WriteSitPool(advised.pool, pool_path);
    if (!w.ok) {
      std::printf("pool write failed: %s\n", w.error.c_str());
      return 1;
    }
    std::printf("offline: wrote %d tables and %d statistics (%zu advised)\n",
                catalog.num_tables(), advised.pool.size(),
                advised.steps.size());
  }

  // ---- optimizer process -------------------------------------------
  Catalog catalog;
  SitPool pool;
  IoResult r = ReadCatalog(catalog_path, &catalog);
  if (!r.ok) {
    std::printf("catalog load failed: %s\n", r.error.c_str());
    return 1;
  }
  r = ReadSitPool(pool_path, catalog, &pool);
  if (!r.ok) {
    std::printf("pool load failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("online:  loaded %d tables, %d statistics\n\n",
              catalog.num_tables(), pool.size());

  // Fresh (unseen) workload, estimated from the loaded statistics; the
  // evaluator here is only used to report the true values.
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  WorkloadOptions wopt;
  wopt.num_queries = 5;
  wopt.num_joins = 3;
  wopt.seed = 999;  // different from training
  const std::vector<Query> serving =
      GenerateWorkload(catalog, &evaluator, wopt);

  Runner runner(&catalog, &evaluator);
  const WorkloadRunResult result =
      runner.Run(serving, pool, Technique::kGsDiff);
  std::printf("%-8s %14s %14s\n", "query", "estimate", "true");
  for (size_t i = 0; i < result.per_query.size(); ++i) {
    std::printf("q%-7zu %14.1f %14.0f\n", i,
                result.per_query[i].full_query_est,
                result.per_query[i].full_query_true);
  }
  std::printf(
      "\navg abs error over all sub-plans: %.2f (statistics were chosen on "
      "a\ndifferent training workload and shipped through disk)\n",
      result.avg_abs_error);
  std::remove(catalog_path.c_str());
  std::remove(pool_path.c_str());
  return 0;
}
