// The paper's introduction (Figures 1 and 2), end to end.
//
// Query: lineitem JOIN orders JOIN customer
//        WHERE o_totalprice > P AND c_nation = 'USA'
// on a TPC-H-flavoured database where the number of line-items per order
// is Zipfian and tracks o_totalprice, and most customers are in one
// nation. Compares:
//   - the traditional estimate (independence everywhere);
//   - each SIT used alone via view-matching-style rewriting (Fig. 1 b,c);
//   - both SITs together, which no view-matching rewrite can do but the
//     conditional-selectivity framework does naturally (Fig. 2).
//
//   $ ./tpch_skew

#include <cmath>
#include <cstdio>

#include "condsel/datagen/tpch_lite.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: example brevity

int main() {
  TpchLiteOptions opt;
  opt.scale = 0.05;
  opt.zipf_theta = 1.2;
  const Catalog catalog = BuildTpchLite(opt);

  const ColumnRef l_orderkey = catalog.ResolveColumn("lineitem", "l_orderkey");
  const ColumnRef o_orderkey = catalog.ResolveColumn("orders", "o_orderkey");
  const ColumnRef o_custkey = catalog.ResolveColumn("orders", "o_custkey");
  const ColumnRef c_custkey = catalog.ResolveColumn("customer", "c_custkey");
  const ColumnRef o_price = catalog.ResolveColumn("orders", "o_totalprice");
  const ColumnRef c_nation = catalog.ResolveColumn("customer", "c_nation");

  // total_price > 50000 (orders with ~20+ line-items); nation = 0 (USA).
  const Query query({Predicate::Join(l_orderkey, o_orderkey),   // 0: L-O
                     Predicate::Join(o_custkey, c_custkey),     // 1: O-C
                     Predicate::Filter(o_price, 50000, 2000000),  // 2
                     Predicate::Equals(c_nation, 0)});            // 3

  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  const double truth = evaluator.Cardinality(query, query.all_predicates());
  const double cross =
      CrossProductCardinality(catalog, query, query.all_predicates());

  // Base histograms for everything.
  SitBuilder builder(&evaluator, SitBuildOptions{});
  SitPool bases;
  for (const ColumnRef& c : {l_orderkey, o_orderkey, o_custkey, c_custkey,
                             o_price, c_nation}) {
    bases.Add(builder.Build(c, {}));
  }
  // The two SITs from the introduction.
  const Sit sit_price_lo =
      builder.Build(o_price, {query.predicate(0)});  // price | L JOIN O
  const Sit sit_nation_oc =
      builder.Build(c_nation, {query.predicate(1)});  // nation | O JOIN C

  auto estimate = [&](const SitPool& pool) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&query);
    DiffError diff;
    AtomicSelectivityProvider approx(&matcher, &diff);
    GetSelectivity gs(&query, &approx);
    return gs.Compute(query.all_predicates()).selectivity * cross;
  };

  SitPool pool_b = bases;
  pool_b.Add(sit_price_lo);
  SitPool pool_c = bases;
  pool_c.Add(sit_nation_oc);
  SitPool pool_both = bases;
  pool_both.Add(sit_price_lo);
  pool_both.Add(sit_nation_oc);

  struct Row {
    const char* label;
    double estimate;
  };
  const Row rows[] = {
      {"no SITs (traditional, Fig. 1a)", estimate(bases)},
      {"SIT(price | L JOIN O) only (Fig. 1b)", estimate(pool_b)},
      {"SIT(nation | O JOIN C) only (Fig. 1c)", estimate(pool_c)},
      {"both SITs together (Fig. 2)", estimate(pool_both)},
  };
  std::printf("true cardinality: %.0f rows\n\n", truth);
  std::printf("%-40s %12s %10s\n", "statistics available", "estimate",
              "ratio");
  for (const Row& r : rows) {
    std::printf("%-40s %12.1f %9.2fx\n", r.label, r.estimate,
                truth > 0 ? r.estimate / truth : 0.0);
  }
  std::printf(
      "\nEach SIT fixes one independence assumption; only the conditional\n"
      "selectivity framework can use both simultaneously (no view-matching\n"
      "rewrite covers both, as the introduction argues).\n");
  return 0;
}
