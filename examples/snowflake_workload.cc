// Full workload walk-through on the synthetic snowflake database:
// generates the Section 5 setup at a reduced scale, builds SIT pools
// J_0..J_3, runs every estimation technique, and prints the accuracy
// and overhead summary (a miniature of Figures 7 and 8).
//
//   $ ./snowflake_workload            # default reduced scale
//   $ CONDSEL_SCALE=0.05 ./snowflake_workload

#include <cstdio>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/report.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: example brevity

int main() {
  SnowflakeOptions opt = SnowflakeOptionsFromEnv();
  opt.scale = opt.scale * 0.1;  // example runs lighter than the benches
  std::printf("building snowflake database (scale %.3f)...\n", opt.scale);
  const Catalog catalog = BuildSnowflake(opt);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    std::printf("  %-6s %8zu rows, %d columns\n",
                catalog.table(t).schema().name.c_str(),
                catalog.table(t).num_rows(), catalog.table(t).num_columns());
  }

  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);

  WorkloadOptions wopt;
  wopt.num_queries = 12;
  wopt.num_joins = 4;
  wopt.num_filters = 3;
  std::printf("\ngenerating %d queries (J=%d, F=%d, target sel %.2f)...\n",
              wopt.num_queries, wopt.num_joins, wopt.num_filters,
              wopt.filter_selectivity);
  const std::vector<Query> workload =
      GenerateWorkload(catalog, &evaluator, wopt);
  std::printf("example query: %s\n", workload[0].ToString(catalog).c_str());

  SitBuilder builder(&evaluator, SitBuildOptions{});
  Runner runner(&catalog, &evaluator);

  std::vector<std::string> header = {"pool", "#SITs", "noSit", "GVM",
                                     "GS-nInd", "GS-Diff", "GS-Opt",
                                     "GS ms/query"};
  std::vector<std::vector<std::string>> rows;
  for (int j = 0; j <= 3; ++j) {
    const SitPool pool = GenerateSitPool(workload, j, builder);
    std::vector<std::string> row = {"J" + std::to_string(j),
                                    std::to_string(pool.size())};
    double gs_ms = 0.0;
    for (Technique t : {Technique::kNoSit, Technique::kGvm,
                        Technique::kGsNInd, Technique::kGsDiff,
                        Technique::kGsOpt}) {
      const WorkloadRunResult r = runner.Run(workload, pool, t);
      row.push_back(FormatDouble(r.avg_abs_error, 1));
      if (t == Technique::kGsDiff) {
        gs_ms = r.avg_analysis_ms + r.avg_histogram_ms;
      }
    }
    row.push_back(FormatDouble(gs_ms, 3));
    rows.push_back(std::move(row));
  }
  std::printf("\naverage absolute cardinality error over all sub-plans:\n\n");
  PrintTable(header, rows);
  std::printf(
      "\nRicher SIT pools cut the error; GS-Diff tracks the GS-Opt oracle\n"
      "at milliseconds of overhead per query.\n");
  return 0;
}
