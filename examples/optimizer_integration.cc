// Section 4 walk-through: coupling getSelectivity with a Cascades-style
// optimizer memo.
//
// Builds the memo for a 3-table query, prints its groups and entries,
// and compares the entry-induced (optimizer-coupled) estimates with the
// full dynamic program: the coupled search is cheaper but may settle for
// a slightly worse decomposition.
//
//   $ ./optimizer_integration

#include <cstdio>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/optimizer/integration.h"
#include "condsel/optimizer/rules.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: example brevity

int main() {
  SnowflakeOptions opt;
  opt.scale = 0.01;
  const Catalog catalog = BuildSnowflake(opt);
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);

  WorkloadOptions wopt;
  wopt.num_queries = 1;
  wopt.num_joins = 2;
  wopt.num_filters = 2;
  const Query query =
      GenerateWorkload(catalog, &evaluator, wopt).front();
  std::printf("query: %s\n\n", query.ToString(catalog).c_str());

  SitBuilder builder(&evaluator, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({query}, 2, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&query);
  DiffError diff;

  // The optimizer memo (Section 4.1).
  Memo memo(&query);
  BuildAndExplore(&memo, query.all_predicates());
  std::printf("memo: %d groups, %d entries\n%s\n", memo.num_groups(),
              memo.num_exprs(), memo.ToString().c_str());

  // Entry-induced estimation (Section 4.2) vs the full DP.
  AtomicSelectivityProvider fa_coupled(&matcher, &diff);
  OptimizerCoupledEstimator coupled(&query, &fa_coupled);
  AtomicSelectivityProvider fa_full(&matcher, &diff);
  GetSelectivity full(&query, &fa_full);

  std::printf("%-10s %14s %14s %12s\n", "sub-plan", "coupled est.",
              "full-DP est.", "true");
  for (PredSet plan : SubPlanFamily(query)) {
    const double cross = CrossProductCardinality(catalog, query, plan);
    std::printf("%#-10x %14.1f %14.1f %12.0f\n", plan,
                coupled.Estimate(plan).selectivity * cross,
                full.Compute(plan).selectivity * cross,
                evaluator.Cardinality(query, plan));
  }
  std::printf(
      "\ncoupled search considered %llu memo entries; the full DP scored "
      "%llu atomic decompositions.\n",
      static_cast<unsigned long long>(coupled.entries_considered()),
      static_cast<unsigned long long>(full.stats().atomic_considered));
  std::printf("\nbest decomposition chosen by the full DP:\n%s",
              full.Explain(query.all_predicates()).c_str());
  return 0;
}
