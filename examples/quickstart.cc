// Quickstart: the condsel public API in ~80 lines.
//
// Builds a tiny two-table database, creates base statistics and one SIT,
// and shows how getSelectivity exploits the SIT to fix a cardinality
// estimate that the independence assumption gets wrong.
//
//   $ ./quickstart

#include <cstdio>

#include "condsel/catalog/catalog.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: example brevity

int main() {
  // 1. Define a database: orders(key, price) and items(order_fk, qty).
  //    Expensive orders have many items (count = price / 100).
  Catalog catalog;
  {
    TableSchema s;
    s.name = "orders";
    s.columns = {{"key", 0, 99, true}, {"price", 100, 1000, false}};
    Table orders(s);
    for (int64_t k = 0; k < 100; ++k) {
      orders.AppendRow({k, 100 + (k % 10) * 100});
    }
    catalog.AddTable(std::move(orders));

    TableSchema si;
    si.name = "items";
    si.columns = {{"order_fk", 0, 99, true}, {"qty", 1, 10, false}};
    Table items(si);
    for (int64_t k = 0; k < 100; ++k) {
      const int64_t count = 1 + (k % 10);  // tracks the price
      for (int64_t i = 0; i < count; ++i) {
        items.AppendRow({k, 1 + (i % 10)});
      }
    }
    catalog.AddTable(std::move(items));
  }

  // 2. The query: items JOIN orders WHERE price >= 800.
  const ColumnRef o_key = catalog.ResolveColumn("orders", "key");
  const ColumnRef o_price = catalog.ResolveColumn("orders", "price");
  const ColumnRef i_fk = catalog.ResolveColumn("items", "order_fk");
  const Query query({Predicate::Join(i_fk, o_key),        // 0
                     Predicate::Filter(o_price, 800, 1000)});  // 1

  // 3. Exact ground truth via the built-in executor.
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  const double truth = evaluator.Cardinality(query, query.all_predicates());

  // 4. Statistics: base histograms only vs. base + SIT(price | join).
  SitBuilder builder(&evaluator, SitBuildOptions{});
  SitPool base_only;
  base_only.Add(builder.Build(o_key, {}));
  base_only.Add(builder.Build(o_price, {}));
  base_only.Add(builder.Build(i_fk, {}));

  SitPool with_sit = base_only;
  with_sit.Add(builder.Build(o_price, {query.predicate(0)}));

  // 5. Estimate with each pool.
  const double cross = 100.0 * static_cast<double>(
                                   catalog.table(i_fk.table).num_rows());
  for (const auto& [name, pool] :
       {std::pair<const char*, const SitPool*>{"base histograms", &base_only},
        {"base + SIT(price | join)", &with_sit}}) {
    SitMatcher matcher(pool);
    matcher.BindQuery(&query);
    DiffError diff;
    AtomicSelectivityProvider approx(&matcher, &diff);
    GetSelectivity gs(&query, &approx);
    const SelEstimate est = gs.Compute(query.all_predicates());
    std::printf("%-28s -> estimated %7.1f rows (true %.0f)\n", name,
                est.selectivity * cross, truth);
  }
  std::printf(
      "\nThe SIT models how the filter's selectivity changes over the join\n"
      "result (expensive orders join with more items), removing the\n"
      "independence assumption that caused the underestimate.\n");
  return 0;
}
