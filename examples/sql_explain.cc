// EXPLAIN-style walk-through driven by SQL text.
//
// Parses COUNT(*) queries against the TPC-H-lite catalog, estimates them
// with and without SITs, and prints the chosen decomposition — the
// closest thing to an optimizer's EXPLAIN for cardinality estimation.
//
//   $ ./sql_explain
//   $ ./sql_explain "SELECT COUNT(*) FROM orders, customer
//        WHERE orders.o_custkey = customer.c_custkey AND
//        customer.c_nation = 0"

#include <cstdio>

#include "condsel/datagen/tpch_lite.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/parser/parser.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: example brevity

int main(int argc, char** argv) {
  TpchLiteOptions opt;
  opt.scale = 0.05;
  const Catalog catalog = BuildTpchLite(opt);
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});

  std::vector<std::string> sqls;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) sqls.emplace_back(argv[i]);
  } else {
    sqls = {
        "SELECT COUNT(*) FROM orders WHERE orders.o_totalprice > 50000",
        "SELECT COUNT(*) FROM lineitem, orders WHERE "
        "lineitem.l_orderkey = orders.o_orderkey AND "
        "orders.o_totalprice > 50000",
        "SELECT COUNT(*) FROM lineitem, orders, customer WHERE "
        "lineitem.l_orderkey = orders.o_orderkey AND "
        "orders.o_custkey = customer.c_custkey AND "
        "orders.o_totalprice > 50000 AND customer.c_nation = 0",
    };
  }

  for (const std::string& sql : sqls) {
    std::printf("SQL> %s\n", sql.c_str());
    const ParseResult parsed = ParseQuery(catalog, sql);
    if (!parsed.ok) {
      std::printf("  parse error: %s\n\n", parsed.error.c_str());
      continue;
    }
    const Query& q = parsed.query;
    const double truth = evaluator.Cardinality(q, q.all_predicates());
    const double cross =
        CrossProductCardinality(catalog, q, q.all_predicates());

    // Pool: base histograms for every referenced column plus SITs over
    // every join expression the query contains.
    const SitPool pool = GenerateSitPool(
        {q}, SetSize(q.join_predicates()), builder);
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    DiffError diff;
    AtomicSelectivityProvider fa(&matcher, &diff);
    GetSelectivity gs(&q, &fa);
    const double est =
        gs.Compute(q.all_predicates()).selectivity * cross;

    std::printf("  true count:      %12.0f\n", truth);
    std::printf("  estimate (SITs): %12.1f\n", est);
    std::printf("  decomposition:\n%s\n",
                gs.Explain(q.all_predicates()).c_str());
  }
  return 0;
}
