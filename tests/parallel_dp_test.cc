// The parallel getSelectivity driver (EstimationBudget::threads > 1).
//
// Verifies the contract documented in get_selectivity.h: on budget-free
// runs the work-stealing level-parallel driver is bit-identical to the
// sequential recursion at every thread count — on balanced lattices and
// on lattices with fault-induced per-level cost imbalance alike; the
// deterministic GsStats counters agree between the drivers; under budgets
// it degrades gracefully (finite, in-range, flagged in GsStats); its
// post-hoc derivation recording passes the full DerivationAuditor,
// provenance included; and concurrent estimators sharing one provider —
// including an estimator killed mid-search by a throwing lookup — never
// disturb each other (the per-call deadline contract of budget.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "condsel/analysis/auditor.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/numeric.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/tpch_lite.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

class ParallelDpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SnowflakeOptions sopt;
    sopt.scale = 0.01;
    catalog_ = BuildSnowflake(sopt);
    cache_ = std::make_unique<CardinalityCache>();
    evaluator_ = std::make_unique<Evaluator>(&catalog_, cache_.get());
    builder_ = std::make_unique<SitBuilder>(evaluator_.get(),
                                            SitBuildOptions{});
    WorkloadOptions wopt;
    wopt.num_queries = 3;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    wopt.seed = 7;
    workload_ = GenerateWorkload(catalog_, evaluator_.get(), wopt);
    pool_ = GenerateSitPool(workload_, 2, *builder_);
  }

  // Computes every SubPlanFamily subset of every workload query with the
  // given budget; returns one "sel err" hexfloat pair per estimate.
  std::vector<std::string> Transcript(const EstimationBudget* budget) {
    DiffError diff;
    std::vector<std::string> lines;
    for (const Query& q : workload_) {
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, budget);
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(p);
        lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
    }
    return lines;
  }

  Catalog catalog_;
  std::unique_ptr<CardinalityCache> cache_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<SitBuilder> builder_;
  std::vector<Query> workload_;
  SitPool pool_;
};

TEST_F(ParallelDpTest, BitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> sequential = Transcript(nullptr);
  ASSERT_FALSE(sequential.empty());
  for (int threads : {2, 4, 8}) {
    EstimationBudget budget;
    budget.threads = threads;
    const std::vector<std::string> parallel = Transcript(&budget);
    ASSERT_EQ(sequential.size(), parallel.size()) << threads << " threads";
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential[i], parallel[i])
          << "estimate " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(ParallelDpTest, RecordedDerivationAuditsClean) {
  EstimationBudget budget;
  budget.threads = 4;
  DiffError diff;
  const DerivationAuditor auditor;
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    GetSelectivity gs(&q, &provider, &budget);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    const AuditReport report = auditor.Audit(q, dag, gs.stats());
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_F(ParallelDpTest, SubproblemCapDegradesGracefully) {
  EstimationBudget budget;
  budget.threads = 4;
  budget.max_subproblems = 3;
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  const SelEstimate e = gs.Compute(q.all_predicates());
  EXPECT_GE(e.selectivity, 0.0);
  EXPECT_LE(e.selectivity, 1.0);
  const GsStats& stats = gs.stats();
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_GT(stats.degraded_subproblems, 0u);
}

TEST_F(ParallelDpTest, ExpiredDeadlineDegradesToIndependence) {
  // With the expiry fault armed the plan degrades before the first
  // subset: the result must equal the independence product of the
  // single-predicate base estimates, same as the sequential driver's
  // documented fallback.
  DiffError diff;
  const Query& q = workload_.front();

  double product = 1.0;
  {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    for (int i : SetElements(q.all_predicates())) {
      product *= provider.BaseAtom(q, i, /*describe=*/false).selectivity;
    }
  }

  EstimationBudget budget;
  budget.threads = 4;
  budget.deadline_seconds = 3600.0;
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  SelEstimate e;
  {
    ScopedFault expire(Fault::kExpireDeadline);
    e = gs.Compute(q.all_predicates());
  }
  EXPECT_EQ(Hex(e.selectivity), Hex(SanitizeSelectivity(product)));
  EXPECT_TRUE(gs.stats().budget_exhausted);
}

TEST_F(ParallelDpTest, StatsStayCleanWithoutBudgetPressure) {
  EstimationBudget budget;
  budget.threads = 4;
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  gs.Compute(q.all_predicates());
  const GsStats& stats = gs.stats();
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_EQ(stats.degraded_subproblems, 0u);
  EXPECT_GT(stats.subproblems, 0u);
}

// The deterministic GsStats counters — everything except timings and the
// schedule-dependent steal accounting — must agree exactly between the
// sequential and the parallel driver, including across repeated Compute()
// calls over overlapping subsets (the optimizer's sub-plan pattern, where
// memo hits dominate). Guards the Pass-1-skips-memoized-subsets hit
// undercount the work-stealing rewrite also fixed.
TEST_F(ParallelDpTest, DeterministicStatsMatchSequentialDriver) {
  DiffError diff;
  for (const Query& q : workload_) {
    GsStats expected;
    {
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, nullptr);
      gs.Compute(q.all_predicates());
      // Two passes over the family: the second is answered entirely from
      // the memo, so it isolates the per-reference hit accounting.
      for (int round = 0; round < 2; ++round) {
        for (PredSet p : SubPlanFamily(q)) gs.Compute(p);
      }
      expected = gs.stats();
    }
    for (int threads : {2, 4}) {
      EstimationBudget budget;
      budget.threads = threads;
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, &budget);
      gs.Compute(q.all_predicates());
      for (int round = 0; round < 2; ++round) {
        for (PredSet p : SubPlanFamily(q)) gs.Compute(p);
      }
      const GsStats& stats = gs.stats();
      EXPECT_EQ(expected.subproblems, stats.subproblems) << threads;
      EXPECT_EQ(expected.memo_hits, stats.memo_hits) << threads;
      EXPECT_EQ(expected.atomic_considered, stats.atomic_considered)
          << threads;
      EXPECT_EQ(expected.degraded_subproblems, stats.degraded_subproblems)
          << threads;
      EXPECT_EQ(expected.default_fallbacks, stats.default_fallbacks)
          << threads;
      EXPECT_EQ(expected.budget_exhausted, stats.budget_exhausted)
          << threads;
    }
  }
}

// Bit-identity on the second schema: the TPC-H-flavoured catalog from the
// paper's introduction, with its Zipfian join skew, exercises different
// lattice shapes (join-heavy, correlated SITs) than the snowflake.
TEST(ParallelDpTpchLiteTest, BitIdenticalAcrossThreadCounts) {
  TpchLiteOptions opt;
  opt.scale = 0.01;
  const Catalog catalog = BuildTpchLite(opt);
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  WorkloadOptions wopt;
  wopt.num_queries = 3;
  wopt.num_joins = 2;
  wopt.num_filters = 3;
  wopt.seed = 11;
  const std::vector<Query> workload =
      GenerateWorkload(catalog, &evaluator, wopt);
  SitBuilder builder(&evaluator, SitBuildOptions{});
  const SitPool pool = GenerateSitPool(workload, 2, builder);

  DiffError diff;
  auto transcript = [&](const EstimationBudget* budget) {
    std::vector<std::string> lines;
    for (const Query& q : workload) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, budget);
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(p);
        lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
    }
    return lines;
  };

  const std::vector<std::string> sequential = transcript(nullptr);
  ASSERT_FALSE(sequential.empty());
  for (int threads : {2, 4, 8}) {
    EstimationBudget budget;
    budget.threads = threads;
    EXPECT_EQ(sequential, transcript(&budget)) << threads << " threads";
  }
}

// Unbalanced levels: the slow-lookup fault, masked to a subset of the
// predicates, makes every factor touching those predicates ~2ms more
// expensive than its level-mates — the scenario the work-stealing
// scheduler exists for. Estimates must stay bit-identical to the
// (fault-free) sequential baseline, since the stall changes only costs,
// never values, and the scheduler's accounting must satisfy its algebra.
TEST_F(ParallelDpTest, ImbalancedLevelsStayBitIdentical) {
  const std::vector<std::string> sequential = Transcript(nullptr);
  ASSERT_FALSE(sequential.empty());
  ScopedFault slow(Fault::kSlowAtomicLookup);
  ScopedSlowLookupMask mask(0b101u);  // predicates 0 and 2 are the slow ones
  for (int threads : {2, 4}) {
    EstimationBudget budget;
    budget.threads = threads;
    DiffError diff;
    std::vector<std::string> lines;
    for (const Query& q : workload_) {
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, &budget);
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(p);
        lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
      const GsStats& stats = gs.stats();
      EXPECT_GE(stats.stolen_subsets, stats.steals);
      EXPECT_EQ(stats.parallel_levels, stats.level_stats.size());
      uint64_t level_steals = 0;
      uint64_t widest = 0;
      for (const GsLevelStats& ls : stats.level_stats) {
        level_steals += ls.steals;
        widest = std::max<uint64_t>(widest, ls.width);
        EXPECT_LE(ls.max_solved_by_one_worker, ls.width);
      }
      EXPECT_EQ(level_steals, stats.steals);
      EXPECT_EQ(widest, stats.max_level_width);
    }
    EXPECT_EQ(sequential, lines) << threads << " threads";
  }
}

// Two estimation sessions sharing one provider (and matcher), both with
// armed deadlines, running their searches concurrently: the per-call
// deadline contract says neither can observe the other's clock, so both
// transcripts must be bit-identical to an undisturbed baseline. Under
// TSan this is the regression test for the set_deadline clobber race.
TEST_F(ParallelDpTest, ConcurrentComputeOnSharedProvider) {
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);

  std::vector<std::string> baseline;
  {
    GetSelectivity gs(&q, &provider, nullptr);
    for (PredSet p : SubPlanFamily(q)) {
      const SelEstimate e = gs.Compute(p);
      baseline.push_back(Hex(e.selectivity) + " " + Hex(e.error));
    }
  }

  // A generous deadline keeps both sessions' clocks armed for the whole
  // search without ever expiring: every Score call carries a live
  // per-call deadline, the worst case for cross-session interference.
  EstimationBudget budget_a;
  budget_a.threads = 2;
  budget_a.deadline_seconds = 3600.0;
  EstimationBudget budget_b = budget_a;
  GetSelectivity gs_a(&q, &provider, &budget_a);
  GetSelectivity gs_b(&q, &provider, &budget_b);

  std::vector<std::string> lines_a;
  std::vector<std::string> lines_b;
  {
    std::jthread ta([&] {
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs_a.Compute(p);
        lines_a.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
    });
    std::jthread tb([&] {
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs_b.Compute(p);
        lines_b.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
    });
  }
  EXPECT_EQ(baseline, lines_a);
  EXPECT_EQ(baseline, lines_b);
}

// An estimator killed mid-search by a throwing statistics lookup must not
// poison the shared provider: after the search unwinds (and the estimator
// is destroyed), a second estimator on the same provider — with the
// slow-lookup fault armed, so the provider's scoring path runs its full
// candidate loops — still produces bit-identical estimates. Before the
// per-call deadline contract, the destroyed estimator's deadline pointer
// stayed parked in the provider, and this scenario read freed memory.
TEST_F(ParallelDpTest, ThrowingLookupLeavesSharedProviderClean) {
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);

  std::vector<std::string> baseline;
  {
    GetSelectivity gs(&q, &provider, nullptr);
    for (PredSet p : SubPlanFamily(q)) {
      const SelEstimate e = gs.Compute(p);
      baseline.push_back(Hex(e.selectivity) + " " + Hex(e.error));
    }
  }

  for (int threads : {1, 4}) {  // sequential unwind and worker rethrow
    EstimationBudget budget;
    budget.threads = threads;
    budget.deadline_seconds = 3600.0;  // armed when the throw unwinds
    {
      GetSelectivity doomed(&q, &provider, &budget);
      ScopedFault boom(Fault::kThrowAtomicLookup);
      EXPECT_THROW(doomed.Compute(q.all_predicates()), std::runtime_error)
          << threads << " threads";
    }  // `doomed` (and its Deadline) destroyed here

    ScopedFault slow(Fault::kSlowAtomicLookup);
    GetSelectivity gs(&q, &provider, nullptr);
    std::vector<std::string> lines;
    for (PredSet p : SubPlanFamily(q)) {
      const SelEstimate e = gs.Compute(p);
      lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
    }
    EXPECT_EQ(baseline, lines) << threads << " threads";
  }
}

}  // namespace
}  // namespace condsel
