// The parallel getSelectivity driver (EstimationBudget::threads > 1).
//
// Verifies the contract documented in get_selectivity.h: on budget-free
// runs the level-parallel driver is bit-identical to the sequential
// recursion at every thread count; under budgets it degrades gracefully
// (finite, in-range, flagged in GsStats); and its post-hoc derivation
// recording passes the full DerivationAuditor, provenance included.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "condsel/analysis/auditor.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/numeric.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

class ParallelDpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SnowflakeOptions sopt;
    sopt.scale = 0.01;
    catalog_ = BuildSnowflake(sopt);
    cache_ = std::make_unique<CardinalityCache>();
    evaluator_ = std::make_unique<Evaluator>(&catalog_, cache_.get());
    builder_ = std::make_unique<SitBuilder>(evaluator_.get(),
                                            SitBuildOptions{});
    WorkloadOptions wopt;
    wopt.num_queries = 3;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    wopt.seed = 7;
    workload_ = GenerateWorkload(catalog_, evaluator_.get(), wopt);
    pool_ = GenerateSitPool(workload_, 2, *builder_);
  }

  // Computes every SubPlanFamily subset of every workload query with the
  // given budget; returns one "sel err" hexfloat pair per estimate.
  std::vector<std::string> Transcript(const EstimationBudget* budget) {
    DiffError diff;
    std::vector<std::string> lines;
    for (const Query& q : workload_) {
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, budget);
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(p);
        lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
      }
    }
    return lines;
  }

  Catalog catalog_;
  std::unique_ptr<CardinalityCache> cache_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<SitBuilder> builder_;
  std::vector<Query> workload_;
  SitPool pool_;
};

TEST_F(ParallelDpTest, BitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> sequential = Transcript(nullptr);
  ASSERT_FALSE(sequential.empty());
  for (int threads : {2, 4, 8}) {
    EstimationBudget budget;
    budget.threads = threads;
    const std::vector<std::string> parallel = Transcript(&budget);
    ASSERT_EQ(sequential.size(), parallel.size()) << threads << " threads";
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential[i], parallel[i])
          << "estimate " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(ParallelDpTest, RecordedDerivationAuditsClean) {
  EstimationBudget budget;
  budget.threads = 4;
  DiffError diff;
  const DerivationAuditor auditor;
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    GetSelectivity gs(&q, &provider, &budget);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    const AuditReport report = auditor.Audit(q, dag, gs.stats());
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_F(ParallelDpTest, SubproblemCapDegradesGracefully) {
  EstimationBudget budget;
  budget.threads = 4;
  budget.max_subproblems = 3;
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  const SelEstimate e = gs.Compute(q.all_predicates());
  EXPECT_GE(e.selectivity, 0.0);
  EXPECT_LE(e.selectivity, 1.0);
  const GsStats& stats = gs.stats();
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_GT(stats.degraded_subproblems, 0u);
}

TEST_F(ParallelDpTest, ExpiredDeadlineDegradesToIndependence) {
  // With the expiry fault armed the plan degrades before the first
  // subset: the result must equal the independence product of the
  // single-predicate base estimates, same as the sequential driver's
  // documented fallback.
  DiffError diff;
  const Query& q = workload_.front();

  double product = 1.0;
  {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    for (int i : SetElements(q.all_predicates())) {
      product *= provider.BaseAtom(q, i, /*describe=*/false).selectivity;
    }
  }

  EstimationBudget budget;
  budget.threads = 4;
  budget.deadline_seconds = 3600.0;
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  SelEstimate e;
  {
    ScopedFault expire(Fault::kExpireDeadline);
    e = gs.Compute(q.all_predicates());
  }
  EXPECT_EQ(Hex(e.selectivity), Hex(SanitizeSelectivity(product)));
  EXPECT_TRUE(gs.stats().budget_exhausted);
}

TEST_F(ParallelDpTest, StatsStayCleanWithoutBudgetPressure) {
  EstimationBudget budget;
  budget.threads = 4;
  DiffError diff;
  const Query& q = workload_.front();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff);
  GetSelectivity gs(&q, &provider, &budget);
  gs.Compute(q.all_predicates());
  const GsStats& stats = gs.stats();
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_EQ(stats.degraded_subproblems, 0u);
  EXPECT_GT(stats.subproblems, 0u);
}

}  // namespace
}  // namespace condsel
