// Concurrency tests for the internally-synchronized components: the
// cross-query cardinality cache, the fault injector, and memo group
// creation. These are the structures annotated with CONDSEL_GUARDED_BY
// (see common/thread_annotations.h); run the suite under
// -DCONDSEL_SANITIZE=thread to have TSan check the same claims
// dynamically.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "condsel/common/fault_injector.h"
#include "condsel/exec/cardinality_cache.h"
#include "condsel/selectivity/budget.h"
#include "condsel/optimizer/memo.h"
#include "condsel/query/query.h"
#include "test_util.h"

namespace condsel {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 200;

std::vector<Predicate> KeyFor(int i) {
  return {Predicate::Filter({0, 0}, i, i + 1)};
}

TEST(ThreadSafetyTest, CardinalityCacheConcurrentInsertLookup) {
  CardinalityCache cache;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (t * kOpsPerThread + i) % 64;
        cache.Insert(KeyFor(k), static_cast<double>(k));
        const double* hit = cache.Lookup(KeyFor(k));
        // Entries are never erased, so a lookup right after an insert
        // must hit, and the pointed-to value must be the inserted one
        // (first insert wins; every writer inserts the same value).
        if (hit == nullptr || *hit != static_cast<double>(k)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ThreadSafetyTest, FaultInjectorConcurrentSetReset) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fi, t] {
      const Fault f = static_cast<Fault>(t % 5);
      for (int i = 0; i < kOpsPerThread; ++i) {
        fi.Set(f, (i % 2) == 0);
        (void)fi.enabled(f);
        if (i % 50 == 0) fi.Reset();
      }
    });
  }
  for (auto& th : threads) th.join();
  fi.Reset();
  // After a full Reset the armed flag and every per-fault flag must be
  // back in sync (the exact race the writer-side mutex closes).
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.enabled(Fault::kDropSits));
  EXPECT_FALSE(fi.enabled(Fault::kCorruptHistograms));
  EXPECT_FALSE(fi.enabled(Fault::kExpireDeadline));
  EXPECT_FALSE(fi.enabled(Fault::kCorruptDerivationFactor));
  EXPECT_FALSE(fi.enabled(Fault::kCorruptHypothesisSet));
}

TEST(ThreadSafetyTest, DeadlineConcurrentArmDisarmExpired) {
  // budget.h's publication contract: one thread re-arms and disarms a
  // Deadline while others poll Expired()/armed(). A reader that observes
  // the deadline armed must observe a matching expiry instant (never a
  // torn or stale one) — under TSan this checks the store ordering, here
  // we check the visible semantics: a deadline armed an hour out never
  // reports expiry, and a disarmed one never reports armed expiry.
  Deadline deadline;
  std::atomic<bool> stop{false};
  std::atomic<int> bogus{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Either state is fine (the writer races us); what is never fine
        // is reporting expiry, since every armed window is 3600s out.
        if (deadline.Expired()) bogus.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kOpsPerThread; ++i) {
    deadline.Arm(3600.0);
    deadline.Disarm();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(bogus.load(), 0);
  EXPECT_FALSE(deadline.armed());

  // Re-arming in the past must flip Expired() immediately — the
  // re-armable contract a one-shot flag would violate.
  deadline.Arm(1e-9);
  EXPECT_TRUE(deadline.Expired());
  deadline.Disarm();
  EXPECT_FALSE(deadline.Expired());
}

TEST(ThreadSafetyTest, MemoConcurrentGroupCreation) {
  const Query q({Predicate::Filter({0, 0}, 1, 5),
                 Predicate::Join({0, 1}, {1, 0}),
                 Predicate::Join({1, 1}, {2, 0}),
                 Predicate::Filter({2, 1}, 1, 3)});
  Memo memo(&q);
  std::vector<std::vector<int>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, &q, &ids, t] {
      for (PredSet p = 1; p <= q.all_predicates(); ++p) {
        if (!IsSubset(p, q.all_predicates())) continue;
        ids[t].push_back(memo.GetOrCreateGroup(p, q.TablesOfSubset(p)));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Same creation order in every thread's view: identical (preds ->
  // group id) mapping, and ids dense in [0, num_groups).
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(memo.num_groups(), static_cast<int>(ids[0].size()));
  for (int id : ids[0]) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, memo.num_groups());
    (void)memo.group(id);  // stable reference, no tearing under TSan
  }
}

}  // namespace
}  // namespace condsel
