// Tests for the cost-based join-order optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "condsel/exec/evaluator.h"
#include "condsel/optimizer/join_ordering.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

Query ChainQuery() {
  return Query({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)});    // 3
}

class JoinOrderingTest : public ::testing::Test {
 protected:
  JoinOrderingTest()
      : catalog_(test::MakeTinyCatalog()), eval_(&catalog_, &cache_) {}

  CardinalityFn TrueCards(const Query& q) {
    return [this, &q](PredSet p) { return eval_.Cardinality(q, p); };
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
};

TEST_F(JoinOrderingTest, TwoTableQueryHasOneShape) {
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Filter(Ra(), 1, 5)});
  JoinOrderOptimizer opt(&q, &catalog_);
  const PlanResult plan = opt.Optimize(TrueCards(q));
  // One join node whose cardinality is the full query's.
  EXPECT_DOUBLE_EQ(plan.estimated_cost,
                   eval_.Cardinality(q, q.all_predicates()));
  EXPECT_EQ(plan.tree.nodes.size(), 3u);  // 2 leaves + 1 join
}

TEST_F(JoinOrderingTest, TreeStructureIsConsistent) {
  const Query q = ChainQuery();
  JoinOrderOptimizer opt(&q, &catalog_);
  const PlanResult plan = opt.Optimize(TrueCards(q));
  // 3 tables -> 3 leaves, 2 internal nodes.
  int leaves = 0, internals = 0;
  for (const auto& n : plan.tree.nodes) {
    if (n.is_leaf) {
      ++leaves;
      EXPECT_NE(n.table, kInvalidTableId);
    } else {
      ++internals;
      EXPECT_GE(n.left, 0);
      EXPECT_GE(n.right, 0);
      // A join node's predicates include its children's.
      EXPECT_TRUE(IsSubset(
          plan.tree.nodes[static_cast<size_t>(n.left)].preds, n.preds));
      EXPECT_TRUE(IsSubset(
          plan.tree.nodes[static_cast<size_t>(n.right)].preds, n.preds));
    }
  }
  EXPECT_EQ(leaves, 3);
  EXPECT_EQ(internals, 2);
  // Root covers the whole query.
  EXPECT_EQ(plan.tree.nodes[static_cast<size_t>(plan.tree.root)].preds,
            q.all_predicates());
}

TEST_F(JoinOrderingTest, OptimalUnderTrueCardsBeatsAlternatives) {
  // For the chain R-S-T there are two bushy shapes: (R JOIN S) JOIN T and
  // R JOIN (S JOIN T). The DP must pick the cheaper intermediate.
  const Query q = ChainQuery();
  JoinOrderOptimizer opt(&q, &catalog_);
  const CardinalityFn truth = TrueCards(q);
  const PlanResult best = opt.Optimize(truth);

  // Cost of each shape by hand: C_out = |inner join node| + |root|.
  const double root = eval_.Cardinality(q, q.all_predicates());
  const double rs = eval_.Cardinality(q, 0b0011);   // (f_R, j_RS)
  const double st = eval_.Cardinality(q, 0b1100);   // (j_ST, f_T)
  const double expected = root + std::min(rs, st);
  EXPECT_DOUBLE_EQ(best.estimated_cost, expected);
  EXPECT_DOUBLE_EQ(opt.Cost(best.tree, truth), expected);
}

TEST_F(JoinOrderingTest, MisleadingEstimatesPickWorsePlans) {
  const Query q = ChainQuery();
  JoinOrderOptimizer opt(&q, &catalog_);
  const CardinalityFn truth = TrueCards(q);
  const double optimal = opt.Cost(opt.Optimize(truth).tree, truth);

  // An adversarial estimator that inverts the relative cost of the two
  // inner joins.
  const double rs = eval_.Cardinality(q, 0b0011);
  const double st = eval_.Cardinality(q, 0b1100);
  ASSERT_NE(rs, st);  // the tiny catalog makes these differ
  const CardinalityFn lying = [&](PredSet p) {
    if (p == 0b0011u) return st;
    if (p == 0b1100u) return rs;
    return truth(p);
  };
  const PlanResult lied = opt.Optimize(lying);
  EXPECT_GE(opt.Cost(lied.tree, truth), optimal);
  EXPECT_GT(opt.Cost(lied.tree, truth), optimal - 1e-12);
  // And specifically: the lying optimizer picked the worse inner join.
  EXPECT_DOUBLE_EQ(opt.Cost(lied.tree, truth),
                   eval_.Cardinality(q, q.all_predicates()) +
                       std::max(rs, st));
}

TEST_F(JoinOrderingTest, CyclicJoinGraphSupported) {
  // R joins S on two column pairs (a 2-cycle in the join graph).
  Catalog c;
  c.AddTable(test::MakeTable("U", {"u1", "u2"}, {{1, 5}, {2, 6}, {3, 7}}));
  c.AddTable(test::MakeTable("V", {"v1", "v2"}, {{1, 5}, {2, 9}, {3, 7}}));
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  const Query q({Predicate::Join({0, 0}, {1, 0}),
                 Predicate::Join({0, 1}, {1, 1})});
  JoinOrderOptimizer opt(&q, &c);
  const PlanResult plan = opt.Optimize(
      [&](PredSet p) { return ev.Cardinality(q, p); });
  EXPECT_DOUBLE_EQ(plan.estimated_cost, 2.0);  // both join preds at once
}

TEST_F(JoinOrderingTest, ToStringListsTables) {
  const Query q = ChainQuery();
  JoinOrderOptimizer opt(&q, &catalog_);
  const PlanResult plan = opt.Optimize(TrueCards(q));
  const std::string s = plan.tree.ToString(q, catalog_);
  EXPECT_NE(s.find("R"), std::string::npos);
  EXPECT_NE(s.find("JOIN"), std::string::npos);
}

}  // namespace
}  // namespace condsel
