// Derivation-graph audit properties: every estimator, run over generated
// workloads on both seed databases, must produce a derivation DAG the
// DerivationAuditor verifies clean — including budget-degraded searches.
// The mutation tests then corrupt one recorded factor / hypothesis set
// through the fault injector and require the auditor to report exactly
// that violation, proving the checks can actually fail.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "condsel/analysis/auditor.h"
#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/common/fault_injector.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/tpch_lite.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/metrics.h"
#include "condsel/optimizer/integration.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

enum class Db { kSnowflake, kTpch };

std::string DbName(const ::testing::TestParamInfo<Db>& info) {
  return info.param == Db::kSnowflake ? "snowflake" : "tpch_lite";
}

class DerivationAuditTest : public ::testing::TestWithParam<Db> {
 protected:
  // tpch_lite has two foreign keys, so J=2 keeps the generator valid on
  // both databases (and the queries small enough for ExhaustiveBest).
  void Build(int num_queries = 4, int num_joins = 2, int num_filters = 2) {
    if (GetParam() == Db::kSnowflake) {
      SnowflakeOptions opt;
      opt.scale = 0.002;
      catalog_ = std::make_unique<Catalog>(BuildSnowflake(opt));
    } else {
      TpchLiteOptions opt;
      opt.scale = 0.01;
      catalog_ = std::make_unique<Catalog>(BuildTpchLite(opt));
    }
    eval_ = std::make_unique<Evaluator>(catalog_.get(), &cache_);
    WorkloadOptions wopt;
    wopt.num_queries = num_queries;
    wopt.num_joins = num_joins;
    wopt.num_filters = num_filters;
    workload_ = GenerateWorkload(*catalog_, eval_.get(), wopt);
    SitBuilder builder(eval_.get(), SitBuildOptions{});
    pool_ = GenerateSitPool(workload_, /*max_join_size=*/2, builder);
  }

  CardinalityCache cache_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Evaluator> eval_;
  std::vector<Query> workload_;
  SitPool pool_;
  DiffError diff_;
  DerivationAuditor auditor_;
};

TEST_P(DerivationAuditTest, GetSelectivityAuditsClean) {
  Build();
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa);
    DerivationDag dag;
    gs.set_recorder(&dag);
    // The whole sub-plan family shares one memoized search: the DAG must
    // stay consistent as requests accumulate.
    for (PredSet plan : SubPlanFamily(q)) gs.Compute(plan);
    const AuditReport report = auditor_.Audit(q, dag, gs.stats());
    ASSERT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.nodes_checked, 0u);
  }
}

TEST_P(DerivationAuditTest, ExhaustiveAuditsClean) {
  Build(/*num_queries=*/2);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    for (const bool separable_first : {true, false}) {
      DerivationDag dag;
      ExhaustiveBest(q, q.all_predicates(), &fa, separable_first, &dag);
      const AuditReport report = auditor_.Audit(q, dag);
      ASSERT_TRUE(report.ok())
          << "separable_first=" << separable_first << "\n"
          << report.ToString();
    }
  }
}

TEST_P(DerivationAuditTest, GvmAuditsClean) {
  Build();
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    GvmEstimator gvm(&matcher);
    DerivationDag dag;
    gvm.set_recorder(&dag);
    gvm.Estimate(q, q.all_predicates());
    const AuditReport report = auditor_.Audit(q, dag);
    ASSERT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_P(DerivationAuditTest, NoSitAuditsClean) {
  Build();
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    NoSitEstimator no_sit(&matcher);
    DerivationDag dag;
    no_sit.set_recorder(&dag);
    no_sit.Estimate(q, q.all_predicates());
    const AuditReport report = auditor_.Audit(q, dag);
    ASSERT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_P(DerivationAuditTest, OptimizerCoupledAuditsClean) {
  Build();
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    OptimizerCoupledEstimator coupled(&q, &fa);
    DerivationDag dag;
    coupled.set_recorder(&dag);
    const StatusOr<SelEstimate> est =
        coupled.TryEstimate(q.all_predicates());
    if (!est.ok()) continue;  // nothing estimable: nothing recorded
    const AuditReport report = auditor_.Audit(q, dag);
    ASSERT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.nodes_checked, 0u);
  }
}

TEST_P(DerivationAuditTest, BudgetDegradedSearchesAuditClean) {
  Build();
  // Tight enough that most subsets fall back to the independence product;
  // the degradation edges and GsStats counters must still reconcile.
  for (const uint64_t max_subproblems : {1u, 3u}) {
    EstimationBudget budget;
    budget.max_subproblems = max_subproblems;
    for (const Query& q : workload_) {
      SitMatcher matcher(&pool_);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider fa(&matcher, &diff_);
      GetSelectivity gs(&q, &fa, &budget);
      DerivationDag dag;
      gs.set_recorder(&dag);
      gs.Compute(q.all_predicates());
      const AuditReport report = auditor_.Audit(q, dag, gs.stats());
      ASSERT_TRUE(report.ok()) << report.ToString();
    }
  }
}

TEST_P(DerivationAuditTest, DeadlineDegradedSearchesAuditClean) {
  Build(/*num_queries=*/2);
  EstimationBudget budget;
  budget.deadline_seconds = 60.0;  // armed; expiry forced by the fault
  ScopedFault fault(Fault::kExpireDeadline);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa, &budget);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    const AuditReport report = auditor_.Audit(q, dag, gs.stats());
    ASSERT_TRUE(report.ok()) << report.ToString();
    EXPECT_TRUE(gs.stats().budget_exhausted);
  }
}

// --- Mutation self-tests: a corrupted recording must be caught. --------

TEST_P(DerivationAuditTest, AuditorDetectsCorruptedFactor) {
  Build(/*num_queries=*/2);
  ScopedFault fault(Fault::kCorruptDerivationFactor);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());

    bool has_factor_node = false;
    for (const DerivationNode& n : dag.nodes()) {
      has_factor_node |= n.kind == DerivKind::kConditionalFactor;
    }
    if (!has_factor_node) continue;  // fully separable/degraded search

    const AuditReport report = auditor_.Audit(q, dag);
    ASSERT_FALSE(report.ok());
    // The seeded factor (1.5) is out of range, and the node's recorded
    // product no longer matches; nothing else may fire.
    EXPECT_TRUE(report.Has(AuditCheck::kFiniteRange)) << report.ToString();
    for (const AuditViolation& v : report.violations) {
      EXPECT_TRUE(v.check == AuditCheck::kFiniteRange ||
                  v.check == AuditCheck::kProductConsistency)
          << report.ToString();
    }
  }
}

TEST_P(DerivationAuditTest, AuditorDetectsCorruptedHypothesisSet) {
  Build(/*num_queries=*/2);
  ScopedFault fault(Fault::kCorruptHypothesisSet);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());

    bool has_sit_application = false;
    for (const DerivationNode& n : dag.nodes()) {
      has_sit_application |= !n.sits.empty();
    }
    if (!has_sit_application) continue;

    const AuditReport report = auditor_.Audit(q, dag);
    ASSERT_FALSE(report.ok());
    // A hypothesis set claiming the head predicates violates Q' ⊆ Q and
    // nothing else: every recorded value is still a valid probability.
    EXPECT_TRUE(report.Has(AuditCheck::kHypothesisConsistency))
        << report.ToString();
    for (const AuditViolation& v : report.violations) {
      EXPECT_EQ(v.check, AuditCheck::kHypothesisConsistency)
          << report.ToString();
    }
  }
}

TEST_P(DerivationAuditTest, AuditorDetectsStrippedProvenance) {
  // Re-record a real search's DAG with every FactorProvenance reset to
  // its default (as a pre-provider recorder would have left it): the
  // audit must flag exactly one provenance violation per statistic
  // application and per product atom, and nothing else — the stripped
  // copy is otherwise algebraically identical.
  Build(/*num_queries=*/2);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());

    DerivationDag stripped;
    size_t expected = 0;
    for (const DerivationNode& n : dag.nodes()) {
      DerivationNode& copy = stripped.AddNode(n.subset);
      copy = n;
      for (SitApplication& s : copy.sits) s.provenance = FactorProvenance{};
      for (DerivationAtom& a : copy.atoms) a.sit.provenance = FactorProvenance{};
      expected += n.sits.size() + n.atoms.size();
    }
    if (expected == 0) continue;  // nothing to strip in this derivation

    const AuditReport report = auditor_.Audit(q, stripped);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.Count(AuditCheck::kProvenance), expected)
        << report.ToString();
    for (const AuditViolation& v : report.violations) {
      EXPECT_EQ(v.check, AuditCheck::kProvenance) << report.ToString();
    }
    EXPECT_NE(report.ToString().find("provenance"), std::string::npos);
  }
}

// Sanity check on the mutation tests themselves: with no fault armed, the
// same searches audit clean (the faults, not the workloads, trigger).
TEST_P(DerivationAuditTest, MutationWorkloadsAuditCleanWithoutFaults) {
  Build(/*num_queries=*/2);
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff_);
    GetSelectivity gs(&q, &fa);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    const AuditReport report = auditor_.Audit(q, dag, gs.stats());
    ASSERT_TRUE(report.ok()) << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Dbs, DerivationAuditTest,
                         ::testing::Values(Db::kSnowflake, Db::kTpch),
                         DbName);

}  // namespace
}  // namespace condsel
