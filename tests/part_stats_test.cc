// Tests for partitioned statistics (catalog/part_stats.h): spec
// enumeration vs GenerateSitPool, single-part bit-identity, multi-part
// merge mass conservation, ApplyDelta's rebuilt/dropped/cross-table/
// reused accounting, merge-validation under kCorruptPartStats, Audit
// failure modes, and the memo/generation staleness regression.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "condsel/api.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/status.h"
#include "condsel/exec/cardinality_cache.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/selectivity_memo.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Fa() { return {0, 0}; }
ColumnRef Fd() { return {0, 1}; }
ColumnRef Dpk() { return {1, 0}; }

std::vector<Query> Workload() {
  return {Query({Predicate::Join(Fd(), Dpk()),
                 Predicate::Filter(Fa(), 10, 60)})};
}

SitBuildOptions Options() { return {HistogramType::kMaxDiff, 64}; }

// F(a, d_id) split into `parts` sealed parts of `rows_per_part` rows
// (a = (row * 7) % 100, d_id = row % 10 — row-index driven, so the same
// total row count yields identical content regardless of partitioning),
// plus a 10-row single-part dimension D(pk, c).
Catalog MakeFactCatalog(int parts, int rows_per_part = 20) {
  Catalog catalog;
  Table fact = test::MakeTable("F", {"a", "d_id"}, {});
  int row = 0;
  for (int p = 0; p < parts; ++p) {
    for (int r = 0; r < rows_per_part; ++r, ++row) {
      fact.AppendRow({(row * 7) % 100, row % 10});
    }
    fact.SealTail();
  }
  catalog.AddTable(std::move(fact));
  std::vector<std::vector<int64_t>> dim_rows;
  for (int64_t i = 0; i < 10; ++i) dim_rows.push_back({i, i * 3});
  Table dim = test::MakeTable("D", {"pk", "c"}, dim_rows, {true, false});
  dim.SealTail();
  catalog.AddTable(std::move(dim));
  return catalog;
}

void ExpectSameHistogram(const Histogram& got, const Histogram& want) {
  EXPECT_EQ(got.source_cardinality(), want.source_cardinality());
  ASSERT_EQ(got.num_buckets(), want.num_buckets());
  for (size_t b = 0; b < got.num_buckets(); ++b) {
    EXPECT_EQ(got.buckets()[b].lo, want.buckets()[b].lo);
    EXPECT_EQ(got.buckets()[b].hi, want.buckets()[b].hi);
    EXPECT_EQ(got.buckets()[b].frequency, want.buckets()[b].frequency);
    EXPECT_EQ(got.buckets()[b].distinct, want.buckets()[b].distinct);
  }
}

void ExpectSamePool(const SitPool& got, const SitPool& want) {
  ASSERT_EQ(got.size(), want.size());
  for (SitId i = 0; i < got.size(); ++i) {
    const Sit& g = got.sit(i);
    const Sit& w = want.sit(i);
    EXPECT_EQ(g.attr, w.attr);
    EXPECT_EQ(g.expression, w.expression);
    EXPECT_EQ(g.diff, w.diff);
    ExpectSameHistogram(g.histogram, w.histogram);
    ASSERT_EQ(g.parts.size(), w.parts.size());
    for (size_t p = 0; p < g.parts.size(); ++p) {
      EXPECT_EQ(g.parts[p].part, w.parts[p].part);
      EXPECT_EQ(g.parts[p].generation, w.parts[p].generation);
      ExpectSameHistogram(g.parts[p].histogram, w.parts[p].histogram);
    }
  }
}

TEST(PartStatsSpecTest, EnumerationMatchesGenerateSitPoolIdByIdOrder) {
  Catalog catalog = MakeFactCatalog(1);
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  const SitBuilder builder(&eval, Options());
  const SitPool pool = GenerateSitPool(Workload(), 1, builder);
  const std::vector<SitSpec> specs = EnumerateSitSpecs(Workload(), 1);

  // 3 base histograms (F.a, F.d_id, D.pk) + the one filter attribute
  // (F.a) over the one join expression.
  ASSERT_EQ(specs.size(), 4u);
  ASSERT_EQ(pool.size(), static_cast<int32_t>(specs.size()));
  for (size_t i = 0; i < specs.size(); ++i) {
    const Sit& sit = pool.sit(static_cast<SitId>(i));
    EXPECT_EQ(specs[i].attr, sit.attr) << "spec " << i;
    EXPECT_EQ(specs[i].expression, sit.expression) << "spec " << i;
    EXPECT_EQ(specs[i].owner(), sit.attr.table);
  }
}

TEST(PartStatsMergeTest, SinglePartPoolIsBitIdenticalToUnpartitioned) {
  Catalog catalog = MakeFactCatalog(1);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  StatusOr<std::shared_ptr<const SitPool>> merged = maintainer.MergedPool();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  const SitBuilder builder(&eval, Options());
  const SitPool reference = GenerateSitPool(Workload(), 1, builder);

  ASSERT_EQ(merged.value()->size(), reference.size());
  for (SitId i = 0; i < reference.size(); ++i) {
    const Sit& sit = merged.value()->sit(i);
    EXPECT_FALSE(sit.is_partitioned());
    EXPECT_EQ(sit.diff, reference.sit(i).diff);
    ExpectSameHistogram(sit.histogram, reference.sit(i).histogram);
  }

  // And bit-identical end to end: the estimator over the merged pool
  // reproduces the unpartitioned estimate exactly.
  const Query q = Workload()[0];
  SitPool merged_copy = *merged.value();
  Estimator a(&catalog, &merged_copy);
  Estimator b(&catalog, &reference);
  EXPECT_EQ(a.EstimateSelectivity(q), b.EstimateSelectivity(q));
}

TEST(PartStatsMergeTest, PiecesConserveMassAndMatchFlatEstimates) {
  Catalog parted = MakeFactCatalog(3, 20);
  Catalog flat = MakeFactCatalog(1, 60);  // same 60 rows, one part

  PartStatsMaintainer maintainer(&parted, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  StatusOr<std::shared_ptr<const SitPool>> merged = maintainer.MergedPool();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  CardinalityCache cache;
  Evaluator eval(&flat, &cache);
  const SitBuilder builder(&eval, Options());
  const SitPool reference = GenerateSitPool(Workload(), 1, builder);

  ASSERT_EQ(merged.value()->size(), reference.size());
  for (SitId i = 0; i < reference.size(); ++i) {
    const Sit& sit = merged.value()->sit(i);
    if (sit.attr.table == 0) {
      // F-owned statistics carry one piece per F part; the piece
      // cardinalities sum to the global statistic's.
      ASSERT_EQ(sit.parts.size(), 3u);
      double mass = 0.0;
      for (const SitPart& piece : sit.parts) {
        mass += piece.histogram.source_cardinality();
      }
      EXPECT_DOUBLE_EQ(mass, reference.sit(i).histogram.source_cardinality());
      EXPECT_DOUBLE_EQ(sit.histogram.source_cardinality(),
                       reference.sit(i).histogram.source_cardinality());
    } else {
      // D has one part: its statistics pass through unpartitioned.
      EXPECT_FALSE(sit.is_partitioned());
    }
  }

  // Per-part histograms are exact at this scale (<= 20 distinct values a
  // part, 64 buckets), so the cardinality-weighted merge reproduces the
  // flat estimate up to floating-point rounding.
  const Query q = Workload()[0];
  SitPool merged_copy = *merged.value();
  Estimator a(&parted, &merged_copy);
  Estimator b(&flat, &reference);
  EXPECT_NEAR(a.EstimateSelectivity(q), b.EstimateSelectivity(q), 1e-9);
  for (PredSet p = 1; p < (1u << 2); ++p) {
    EXPECT_NEAR(a.EstimateSelectivity(q, p), b.EstimateSelectivity(q, p),
                1e-9)
        << "subset " << p;
  }
}

TEST(PartStatsDeltaTest, InsertRebuildsOnlyTheNewPart) {
  Catalog catalog = MakeFactCatalog(3);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  const uint64_t gen0 = maintainer.stats_generation();
  std::vector<uint64_t> old_generations;
  for (size_t pi = 0; pi < catalog.table(0).num_parts(); ++pi) {
    old_generations.push_back(catalog.table(0).part(pi).generation());
  }

  DeltaBatch batch;
  batch.table = 0;
  batch.insert_rows = {{5, 5}, {12, 3}};
  StatusOr<DeltaReport> report = maintainer.ApplyDelta(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Exactly one new part built; the three old F entries and the D entry
  // survive untouched — the cost ∝ parts-touched property.
  EXPECT_EQ(report.value().rebuilt_parts.size(), 1u);
  EXPECT_TRUE(report.value().dropped_parts.empty());
  EXPECT_EQ(report.value().cross_table_pieces_rebuilt, 0);
  EXPECT_EQ(report.value().reused_entries, 4);
  EXPECT_GT(report.value().stats_generation, gen0);
  EXPECT_EQ(report.value().stats_generation, maintainer.stats_generation());
  ASSERT_EQ(catalog.table(0).num_parts(), 4u);
  for (size_t pi = 0; pi < old_generations.size(); ++pi) {
    EXPECT_EQ(catalog.table(0).part(pi).generation(), old_generations[pi]);
  }

  // Incremental maintenance converges to the full rebuild: a fresh
  // maintainer over the mutated catalog produces the same pool.
  StatusOr<std::shared_ptr<const SitPool>> incremental =
      maintainer.MergedPool();
  ASSERT_TRUE(incremental.ok());
  PartStatsMaintainer fresh(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(fresh.BuildAll().ok());
  StatusOr<std::shared_ptr<const SitPool>> rebuilt = fresh.MergedPool();
  ASSERT_TRUE(rebuilt.ok());
  ExpectSamePool(*incremental.value(), *rebuilt.value());
}

TEST(PartStatsDeltaTest, DeleteDropsTheEmptiedPartsEntry) {
  Catalog catalog = MakeFactCatalog(3);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  const PartId first = catalog.table(0).part(0).id();

  DeltaBatch batch;
  batch.table = 0;
  for (size_t r = 0; r < 20; ++r) batch.delete_rows.push_back(r);
  StatusOr<DeltaReport> report = maintainer.ApplyDelta(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report.value().dropped_parts.size(), 1u);
  EXPECT_EQ(report.value().dropped_parts[0], first);
  EXPECT_TRUE(report.value().rebuilt_parts.empty());
  EXPECT_EQ(maintainer.stats().FindEntry(0, first), nullptr);
  EXPECT_EQ(catalog.table(0).part_index(first), -1);

  StatusOr<std::shared_ptr<const SitPool>> merged = maintainer.MergedPool();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value()->sit(0).parts.size(), 2u);
}

TEST(PartStatsDeltaTest, PartialDeleteRebuildsThatPartInPlace) {
  Catalog catalog = MakeFactCatalog(3);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  const PartId first = catalog.table(0).part(0).id();
  const uint64_t old_generation = catalog.table(0).part(0).generation();

  DeltaBatch batch;
  batch.table = 0;
  batch.delete_rows = {0, 1, 2};
  StatusOr<DeltaReport> report = maintainer.ApplyDelta(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Same part id, bumped generation, entry re-stamped to match.
  ASSERT_EQ(report.value().rebuilt_parts.size(), 1u);
  EXPECT_EQ(report.value().rebuilt_parts[0], first);
  EXPECT_TRUE(report.value().dropped_parts.empty());
  EXPECT_EQ(report.value().reused_entries, 3);
  const PartStatsEntry* entry = maintainer.stats().FindEntry(0, first);
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->generation, old_generation);
  EXPECT_EQ(entry->generation, catalog.table(0).part(0).generation());
  EXPECT_DOUBLE_EQ(entry->rows, 17.0);
  EXPECT_TRUE(maintainer.stats().Audit(catalog).ok());
}

TEST(PartStatsDeltaTest, DimensionDeltaRefreshesCrossTableJoinPieces) {
  Catalog catalog = MakeFactCatalog(3);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  std::vector<uint64_t> fact_generations;
  for (size_t pi = 0; pi < catalog.table(0).num_parts(); ++pi) {
    fact_generations.push_back(catalog.table(0).part(pi).generation());
  }
  int cross_specs = 0;
  for (const SitSpec& spec : maintainer.stats().specs()) {
    if (spec.owner() == 0 && spec.References(1)) ++cross_specs;
  }
  ASSERT_GT(cross_specs, 0);

  DeltaBatch batch;
  batch.table = 1;
  batch.insert_rows = {{10, 30}};  // a new dimension key
  StatusOr<DeltaReport> report = maintainer.ApplyDelta(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // One new D part built; every F part's join pieces (owner F, expression
  // referencing D) refreshed in place without touching the parts
  // themselves; only the old D entry is reused as-is.
  EXPECT_EQ(report.value().rebuilt_parts.size(), 1u);
  EXPECT_EQ(report.value().cross_table_pieces_rebuilt, 3 * cross_specs);
  EXPECT_EQ(report.value().reused_entries, 1);
  for (size_t pi = 0; pi < fact_generations.size(); ++pi) {
    EXPECT_EQ(catalog.table(0).part(pi).generation(), fact_generations[pi]);
  }

  StatusOr<std::shared_ptr<const SitPool>> incremental =
      maintainer.MergedPool();
  ASSERT_TRUE(incremental.ok());
  PartStatsMaintainer fresh(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(fresh.BuildAll().ok());
  StatusOr<std::shared_ptr<const SitPool>> rebuilt = fresh.MergedPool();
  ASSERT_TRUE(rebuilt.ok());
  ExpectSamePool(*incremental.value(), *rebuilt.value());
}

TEST(PartStatsDeltaTest, RejectsMalformedBatches) {
  Catalog catalog = MakeFactCatalog(2);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  const uint64_t gen = maintainer.stats_generation();

  DeltaBatch bad_table;
  bad_table.table = 9;
  bad_table.insert_rows = {{1, 1}};
  EXPECT_EQ(maintainer.ApplyDelta(bad_table).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBatch ragged;
  ragged.table = 0;
  ragged.insert_rows = {{1, 2, 3}};  // F has two columns
  EXPECT_EQ(maintainer.ApplyDelta(ragged).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBatch out_of_range;
  out_of_range.table = 0;
  out_of_range.delete_rows = {40};  // only 40 rows exist (0..39)
  EXPECT_EQ(maintainer.ApplyDelta(out_of_range).status().code(),
            StatusCode::kInvalidArgument);

  // Failed batches change nothing.
  EXPECT_EQ(maintainer.stats_generation(), gen);
  EXPECT_TRUE(maintainer.stats().Audit(catalog).ok());
}

TEST(PartStatsFaultTest, CorruptPartStatsFaultFailsMergeValidation) {
  Catalog catalog = MakeFactCatalog(2);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  ASSERT_TRUE(maintainer.MergedPool().ok());
  {
    ScopedFault fault(Fault::kCorruptPartStats);
    StatusOr<std::shared_ptr<const SitPool>> poisoned =
        maintainer.MergedPool();
    ASSERT_FALSE(poisoned.ok());
    EXPECT_EQ(poisoned.status().code(), StatusCode::kDataLoss);
  }
  // The stored entries themselves were never touched: with the fault
  // cleared, the merge succeeds again.
  EXPECT_TRUE(maintainer.MergedPool().ok());
}

TEST(PartStatsAuditTest, FlagsMissingStaleAndCorruptEntries) {
  Catalog catalog = MakeFactCatalog(2);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  const PartStatsSet& good = maintainer.stats();
  ASSERT_TRUE(good.Audit(catalog).ok());
  const PartId first = catalog.table(0).part(0).id();

  PartStatsSet missing = good;
  missing.RemoveEntry(0, first);
  EXPECT_EQ(missing.Audit(catalog).code(),
            StatusCode::kFailedPrecondition);

  PartStatsSet stale = good;
  PartStatsEntry entry = *good.FindEntry(0, first);
  entry.generation += 1;
  stale.PutEntry(entry);
  EXPECT_EQ(stale.Audit(catalog).code(), StatusCode::kFailedPrecondition);

  PartStatsSet corrupt = good;
  entry = *good.FindEntry(0, first);
  ASSERT_FALSE(entry.pieces.empty());
  entry.pieces[0] = Histogram(
      entry.pieces[0].buckets(), std::numeric_limits<double>::quiet_NaN());
  corrupt.PutEntry(entry);
  EXPECT_EQ(corrupt.Audit(catalog).code(), StatusCode::kDataLoss);
  EXPECT_EQ(corrupt.BuildMergedPool(catalog, 64).status().code(),
            StatusCode::kDataLoss);
}

TEST(PartStatsMemoTest, DeltaRefreshInvalidatesMemoizedEstimates) {
  Catalog catalog = MakeFactCatalog(2);
  PartStatsMaintainer maintainer(&catalog, Workload(), 1, Options());
  ASSERT_TRUE(maintainer.BuildAll().ok());
  SitPool pool = *maintainer.MergedPool().value();
  ASSERT_GT(pool.generation(), 0u);

  Estimator estimator(&catalog, &pool);
  const Query q = Workload()[0];
  const StatusOr<double> before = estimator.TryEstimateSelectivity(q);
  ASSERT_TRUE(before.ok());

  // Shift the distribution: 40 rows with a = 0 (outside the filter
  // range) and d_id = 0, then refresh the pool object *in place* — the
  // estimator keeps the same pool pointer; only the generation tells it
  // the statistics changed.
  DeltaBatch batch;
  batch.table = 0;
  batch.insert_rows.assign(40, {0, 0});
  ASSERT_TRUE(maintainer.ApplyDelta(batch).ok());
  const uint64_t old_generation = pool.generation();
  pool = *maintainer.MergedPool().value();
  ASSERT_GT(pool.generation(), old_generation);

  const StatusOr<double> after = estimator.TryEstimateSelectivity(q);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value(), before.value());

  // Without generation-aware memo invalidation the second estimate would
  // replay the stale memo entry; it must instead match a cold estimator
  // bit for bit.
  Estimator cold(&catalog, &pool);
  const StatusOr<double> fresh = cold.TryEstimateSelectivity(q);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(after.value(), fresh.value());
}

TEST(PartStatsMemoTest, BindGenerationClearsEntriesOnlyOnChange) {
  SelectivityMemo memo;
  MemoEntry entry;
  entry.selectivity = 0.25;
  entry.kind = MemoEntryKind::kAtomic;

  // First bind adopts the generation without clearing.
  memo.Insert(3, entry);
  memo.BindGeneration(7);
  EXPECT_NE(memo.Find(3), nullptr);
  EXPECT_EQ(memo.bound_generation(), 7u);

  // Rebinding the same generation keeps entries; a new generation drops
  // them (and the fallback atoms) before rebinding.
  memo.BindGeneration(7);
  ASSERT_NE(memo.Find(3), nullptr);
  EXPECT_EQ(memo.Find(3)->selectivity, 0.25);
  memo.BindGeneration(8);
  EXPECT_EQ(memo.Find(3), nullptr);
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.bound_generation(), 8u);
}

}  // namespace
}  // namespace condsel
