// Tests for the LEO-style feedback baseline.

#include <gtest/gtest.h>

#include "condsel/baselines/feedback.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }

class FeedbackTest : public ::testing::Test {
 protected:
  FeedbackTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
};

TEST_F(FeedbackTest, UntrainedEqualsNoSit) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy())});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  FeedbackEstimator fb(&matcher);
  EXPECT_DOUBLE_EQ(fb.AdjustmentFor(Ra()), 1.0);
  // Untrained: pure independence product (exact single-pred estimates
  // multiplied) = 0.5 * 0.125.
  EXPECT_NEAR(fb.Estimate(q, q.all_predicates()), 0.0625, 1e-9);
}

TEST_F(FeedbackTest, LearnsAdjustmentFromObservation) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy())});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  FeedbackEstimator fb(&matcher);
  fb.Observe(q, &eval_);
  // True Sel(a in [1,5] | join) = 0.7; base estimate 0.5 -> factor 1.4.
  EXPECT_NEAR(fb.AdjustmentFor(Ra()), 1.4, 1e-9);
  // After training on the same query, its estimate is corrected.
  matcher.BindQuery(&q);
  const double est = fb.Estimate(q, q.all_predicates());
  EXPECT_NEAR(est, 0.7 * 0.125, 1e-9);
  EXPECT_NEAR(est * 80.0, eval_.Cardinality(q, q.all_predicates()), 1e-6);
}

TEST_F(FeedbackTest, SingleAdjustmentCannotServeTwoContexts) {
  // The structural limitation the paper highlights: one adjusted number
  // per attribute cannot be right for two different join contexts.
  const Query with_join({Predicate::Filter(Ra(), 1, 5),
                         Predicate::Join(Rx(), Sy())});
  const Query alone({Predicate::Filter(Ra(), 1, 5)});
  const SitPool pool = GenerateSitPool({with_join, alone}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&with_join);
  FeedbackEstimator fb(&matcher);
  fb.Observe(with_join, &eval_);

  // Context 1 (trained): corrected.
  matcher.BindQuery(&with_join);
  EXPECT_NEAR(fb.Estimate(with_join, with_join.all_predicates()) * 80.0,
              eval_.Cardinality(with_join, with_join.all_predicates()),
              1e-6);
  // Context 2 (the filter alone): the adjustment now *hurts* — the base
  // estimate was exact (0.5), the adjusted one is 0.7.
  matcher.BindQuery(&alone);
  const double est = fb.Estimate(alone, 1);
  const double truth = eval_.TrueSelectivity(alone, 1);
  EXPECT_DOUBLE_EQ(truth, 0.5);
  EXPECT_GT(std::abs(est - truth), 0.1);
}

TEST_F(FeedbackTest, AdjustmentCapsAtCertainty) {
  // Adjusted selectivities never exceed 1.
  const Query q({Predicate::Filter(Ra(), 1, 10), Predicate::Join(Rx(), Sy())});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  FeedbackEstimator fb(&matcher);
  fb.Observe(q, &eval_);
  matcher.BindQuery(&q);
  EXPECT_LE(fb.Estimate(q, 1u << 0), 1.0);
}

TEST_F(FeedbackTest, AveragesMultipleObservations) {
  const Query q1({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy())});
  const Query q2({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy())});
  const SitPool pool = GenerateSitPool({q1, q2}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q1);
  FeedbackEstimator fb(&matcher);
  fb.Observe(q1, &eval_);
  const double after_one = fb.AdjustmentFor(Ra());
  fb.Observe(q2, &eval_);
  const double after_two = fb.AdjustmentFor(Ra());
  EXPECT_NE(after_one, after_two);  // the second query has a different ratio
  EXPECT_GT(after_two, 1.0);        // both observations push upward here
}

}  // namespace
}  // namespace condsel
