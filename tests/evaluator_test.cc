// Tests for the exact executor: cardinalities, conditional selectivities,
// projections. Validated against the brute-force nested-loop reference on
// the tiny catalog and on randomized queries.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : catalog_(test::MakeTinyCatalog()), eval_(&catalog_, &cache_) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
};

TEST_F(EvaluatorTest, EmptySubsetIsUnitCardinality) {
  const Query q({Predicate::Filter(Ra(), 1, 5)});
  EXPECT_DOUBLE_EQ(eval_.Cardinality(q, 0), 1.0);
}

TEST_F(EvaluatorTest, SingleFilter) {
  const Query q({Predicate::Filter(Ra(), 1, 5)});
  // R.a in [1,5]: rows 1..5.
  EXPECT_DOUBLE_EQ(eval_.Cardinality(q, 1), 5.0);
  EXPECT_DOUBLE_EQ(eval_.TrueSelectivity(q, 1), 0.5);
}

TEST_F(EvaluatorTest, JoinSkipsNulls) {
  const Query q({Predicate::Join(Rx(), Sy())});
  // R.x joins S.y: 10->2 rows in S (2*2 matches), 20->1 (3), 30->1 (1),
  // 40->1 (2), 50->0, 60->0. The NULL S.y row matches nothing.
  // Matches: x=10: 2 R-rows * 2 S-rows = 4; x=20: 3*1=3; 30: 1*1=1;
  // 40: 2*1=2. Total 10.
  EXPECT_DOUBLE_EQ(eval_.Cardinality(q, 1), 10.0);
}

TEST_F(EvaluatorTest, FilterPlusJoinMatchesBruteForce) {
  const Query q({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Sb(), 100, 200)});
  for (PredSet subset = 1; subset <= q.all_predicates(); ++subset) {
    EXPECT_DOUBLE_EQ(eval_.Cardinality(q, subset),
                     test::BruteForceCardinality(catalog_, q, subset))
        << "subset " << subset;
  }
}

TEST_F(EvaluatorTest, ThreeWayJoinMatchesBruteForce) {
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Join(Sb(), Tz()),
                 Predicate::Filter(Tc(), 1, 3), Predicate::Filter(Ra(), 2, 9)});
  for (PredSet subset = 1; subset <= q.all_predicates(); ++subset) {
    EXPECT_DOUBLE_EQ(eval_.Cardinality(q, subset),
                     test::BruteForceCardinality(catalog_, q, subset))
        << "subset " << subset;
  }
}

TEST_F(EvaluatorTest, SeparableSubsetsMultiply) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Filter(Tc(), 1, 2)});
  // 5 rows of R, 2 rows of T: the disconnected subset is a cross product.
  EXPECT_DOUBLE_EQ(eval_.Cardinality(q, 0b11), 10.0);
}

TEST_F(EvaluatorTest, TrueConditionalSelectivityDefinition) {
  const Query q({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy())});
  // Sel(P|Q) = card(P ∪ Q) / (card(Q) * extra-table cross product).
  const double pq = eval_.Cardinality(q, 0b11);
  const double jq = eval_.Cardinality(q, 0b10);
  EXPECT_DOUBLE_EQ(eval_.TrueConditionalSelectivity(q, 0b01, 0b10), pq / jq);
  // Conditioning on the empty set with extra tables: Sel(join | {}) is
  // card(join) / |R x S|.
  EXPECT_DOUBLE_EQ(eval_.TrueConditionalSelectivity(q, 0b10, 0),
                   eval_.Cardinality(q, 0b10) / 80.0);
}

TEST_F(EvaluatorTest, AtomicDecompositionPropertyHoldsExactly) {
  // Property 1: Sel(P, Q) = Sel(P|Q) * Sel(Q) — with exact values this is
  // an identity; verify it numerically for several splits.
  const Query q({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Sb(), 100, 200)});
  const PredSet all = q.all_predicates();
  for (PredSet p = all; p != 0; p = PrevSubmask(all, p)) {
    const PredSet cond = all & ~p;
    const double lhs = eval_.TrueSelectivity(q, all);
    const double rhs = eval_.TrueConditionalSelectivity(q, p, cond) *
                       eval_.TrueSelectivity(q, cond);
    EXPECT_NEAR(lhs, rhs, 1e-12) << "split " << p;
  }
}

TEST_F(EvaluatorTest, ProjectColumnBaseTable) {
  const ColumnProjection proj =
      eval_.ProjectColumn(Query(std::vector<Predicate>{}), 0, Sy());
  EXPECT_EQ(proj.total_tuples, 8u);
  EXPECT_EQ(proj.values.size(), 7u);  // one NULL excluded
}

TEST_F(EvaluatorTest, ProjectColumnOverJoin) {
  const Query q({Predicate::Join(Rx(), Sy())});
  const ColumnProjection proj = eval_.ProjectColumn(q, 1, Ra());
  EXPECT_EQ(proj.total_tuples, 10u);  // join result size
  EXPECT_EQ(proj.values.size(), 10u);
  // Frequencies reflect join multiplicity: a=1 and a=2 (x=10) appear
  // twice each.
  int count_a1 = 0;
  for (int64_t v : proj.values) count_a1 += (v == 1);
  EXPECT_EQ(count_a1, 2);
}

TEST_F(EvaluatorTest, CardinalityCacheHits) {
  const Query q({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy())});
  cache_.ResetCounters();
  eval_.Cardinality(q, 0b11);
  const uint64_t misses_first = cache_.misses();
  EXPECT_GT(misses_first, 0u);
  eval_.Cardinality(q, 0b11);
  EXPECT_GT(cache_.hits(), 0u);
  EXPECT_EQ(cache_.misses(), misses_first);
}

TEST_F(EvaluatorTest, CacheSharedAcrossEquivalentQueries) {
  // The same canonical predicates in a different order hit the cache.
  const Query q1({Predicate::Filter(Ra(), 3, 8), Predicate::Join(Rx(), Sy())});
  const Query q2({Predicate::Join(Rx(), Sy()), Predicate::Filter(Ra(), 3, 8)});
  eval_.Cardinality(q1, 0b11);
  cache_.ResetCounters();
  eval_.Cardinality(q2, 0b11);
  EXPECT_GT(cache_.hits(), 0u);
  EXPECT_EQ(cache_.misses(), 0u);
}

TEST_F(EvaluatorTest, CyclicJoinComponent) {
  // R-S via x=y, R-S again via a=b is a (degenerate) cycle: the second
  // join must be applied as a tuple filter.
  Catalog c;
  c.AddTable(test::MakeTable("U", {"u1", "u2"}, {{1, 5}, {2, 6}, {3, 7}}));
  c.AddTable(test::MakeTable("V", {"v1", "v2"}, {{1, 5}, {2, 9}, {3, 7}}));
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  const Query q({Predicate::Join({0, 0}, {1, 0}), Predicate::Join({0, 1}, {1, 1})});
  // Rows matching on both columns: (1,5) and (3,7) -> 2 tuples.
  EXPECT_DOUBLE_EQ(ev.Cardinality(q, 0b11), 2.0);
  EXPECT_DOUBLE_EQ(ev.Cardinality(q, 0b01), 3.0);
}

TEST(EvaluatorRandomTest, RandomQueriesMatchBruteForce) {
  // Property test: random filters/joins over the tiny catalog agree with
  // the nested-loop reference on every subset.
  Catalog catalog = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  Rng rng(2024);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Predicate> preds;
    preds.push_back(Predicate::Join(Rx(), Sy()));
    if (rng.NextBool(0.5)) preds.push_back(Predicate::Join(Sb(), Tz()));
    const int64_t lo = rng.NextInRange(0, 8);
    preds.push_back(Predicate::Filter(Ra(), lo, lo + rng.NextInRange(0, 4)));
    const int64_t slo = rng.NextInRange(0, 400);
    preds.push_back(Predicate::Filter(Sb(), slo, slo + 150));
    const Query q(std::move(preds));
    for (PredSet subset = 1; subset <= q.all_predicates(); ++subset) {
      ASSERT_DOUBLE_EQ(eval.Cardinality(q, subset),
                       test::BruteForceCardinality(catalog, q, subset))
          << "iter " << iter << " subset " << subset;
    }
  }
}

}  // namespace
}  // namespace condsel
