// Tests for the nInd, Diff, and Opt error functions.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "condsel/selectivity/error_function.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class ErrorFunctionTest : public ::testing::Test {
 protected:
  ErrorFunctionTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)}) {}

  SitCandidate Candidate(const Sit& sit, PredSet mask) {
    sits_.push_back(sit);
    return SitCandidate{&sits_.back(), mask};
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  std::deque<Sit> sits_;
};

TEST_F(ErrorFunctionTest, NIndCountsAssumptions) {
  NIndError fn;
  const Sit base = builder_.Build(Ra(), {});
  // Sel(p0 | p1, p2, p3) approximated with the base histogram: 1 * 3.
  EXPECT_DOUBLE_EQ(
      fn.FactorError(query_, 0b0001, 0b1110, {Candidate(base, 0)}, -1), 3.0);
  // With SIT(R.a | p1): 1 * |{p2, p3}| = 2.
  const Sit s1 = builder_.Build(Ra(), {query_.predicate(1)});
  EXPECT_DOUBLE_EQ(
      fn.FactorError(query_, 0b0001, 0b1110, {Candidate(s1, 0b0010)}, -1),
      2.0);
  // Paper's example: nInd(Sel(p|q1,q2), SIT(p|q1)) = 1.
  EXPECT_DOUBLE_EQ(
      fn.FactorError(query_, 0b0001, 0b0110, {Candidate(s1, 0b0010)}, -1),
      1.0);
}

TEST_F(ErrorFunctionTest, NIndScalesWithFactorSize) {
  NIndError fn;
  const Sit base = builder_.Build(Ra(), {});
  // |P| = 2, |Q - Q'| = 2 -> 4 assumptions.
  EXPECT_DOUBLE_EQ(
      fn.FactorError(query_, 0b0011, 0b1100, {Candidate(base, 0)}, -1), 4.0);
}

TEST_F(ErrorFunctionTest, NIndUnionsQPrimeAcrossSits) {
  NIndError fn;
  const Sit s1 = builder_.Build(Ra(), {query_.predicate(1)});
  const Sit s2 = builder_.Build(Tc(), {query_.predicate(2)});
  // Join factor using two SITs covering {p1} and {p2}: Q' = {p1, p2},
  // so |Q - Q'| = 0.
  EXPECT_DOUBLE_EQ(
      fn.FactorError(query_, 0b0001, 0b0110,
                     {Candidate(s1, 0b0010), Candidate(s2, 0b0100)}, -1),
      0.0);
}

TEST_F(ErrorFunctionTest, DiffRewardsInformativeSits) {
  DiffError fn;
  Sit flat = builder_.Build(Ra(), {});
  flat.diff = 0.0;
  Sit sharp = builder_.Build(Ra(), {query_.predicate(1)});
  sharp.diff = 0.8;
  const double e_flat =
      fn.FactorError(query_, 0b0001, 0b0010, {Candidate(flat, 0)}, -1);
  const double e_sharp = fn.FactorError(query_, 0b0001, 0b0010,
                                        {Candidate(sharp, 0b0010)}, -1);
  EXPECT_DOUBLE_EQ(e_flat, 1.0);
  EXPECT_NEAR(e_sharp, 0.2, 1e-12);
  EXPECT_LT(e_sharp, e_flat);
}

TEST_F(ErrorFunctionTest, DiffAveragesAcrossSits) {
  DiffError fn;
  Sit a = builder_.Build(Ra(), {});
  a.diff = 0.4;
  Sit b = builder_.Build(Tc(), {});
  b.diff = 0.0;
  const double e = fn.FactorError(
      query_, 0b0010, 0b0000, {Candidate(a, 0), Candidate(b, 0)}, -1);
  EXPECT_NEAR(e, 1.0 - 0.2, 1e-12);
}

TEST_F(ErrorFunctionTest, DiffEmptySitListChargesFullIndependence) {
  DiffError fn;
  EXPECT_DOUBLE_EQ(fn.FactorError(query_, 0b0011, 0b1100, {}, -1), 2.0);
}

TEST_F(ErrorFunctionTest, OptComparesAgainstTruth) {
  OptError fn(&eval_);
  EXPECT_TRUE(fn.NeedsEstimate());
  const double truth =
      eval_.TrueConditionalSelectivity(query_, 0b0001, 0b0010);
  // Opt scores the log-ratio deviation: 0 at truth, log(2) at 2x truth,
  // and symmetric for over/underestimation by the same factor.
  EXPECT_NEAR(fn.FactorError(query_, 0b0001, 0b0010, {}, truth), 0.0, 1e-12);
  EXPECT_NEAR(fn.FactorError(query_, 0b0001, 0b0010, {}, truth * 2.0),
              std::log(2.0), 1e-9);
  EXPECT_NEAR(fn.FactorError(query_, 0b0001, 0b0010, {}, truth / 2.0),
              std::log(2.0), 1e-9);
}

TEST_F(ErrorFunctionTest, AllAreMonotoneUnderMerge) {
  // E_merge is a sum: adding a factor can only increase total error.
  const double e1 = 0.7, e2 = 1.3;
  EXPECT_GE(ErrorFunction::Merge(e1, e2), e1);
  EXPECT_GE(ErrorFunction::Merge(e1, e2), e2);
  EXPECT_DOUBLE_EQ(ErrorFunction::Merge(e1, 0.0), e1);
}

TEST_F(ErrorFunctionTest, Names) {
  NIndError n;
  DiffError d;
  OptError o(&eval_);
  EXPECT_STREQ(n.name(), "nInd");
  EXPECT_STREQ(d.name(), "Diff");
  EXPECT_STREQ(o.name(), "Opt");
  EXPECT_FALSE(n.NeedsEstimate());
  EXPECT_FALSE(d.NeedsEstimate());
}

}  // namespace
}  // namespace condsel
