// Chaos soak for the EstimationService.
//
// Many session threads hammer Submit() while a refresher thread swaps
// snapshot epochs underneath them and a fault thread pulses transient
// faults (throwing lookups, slow masked lookups, failed swaps, slow
// refreshes). The invariants under all of that:
//  - no torn snapshot is ever observed (every acquired handle is coherent
//    — the atomic epoch swap never exposes a half-published bundle);
//  - the telemetry books balance exactly at quiescence: every submitted
//    request is accounted as completed or failed, with one latency sample
//    each, and rejections partition by outcome;
//  - old epochs retire only by refcount — after the storm, the live set
//    collapses back to the current epoch;
//  - each published epoch's statistics still estimate deterministically:
//    the sequential and parallel getSelectivity drivers stay bit-identical
//    on every epoch's pool after the chaos ends (the storm cannot have
//    corrupted shared statistics).
//
// Run under TSan in CI (the chaos-soak step) with CONDSEL_AUDIT=1.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "condsel/api.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/common/fault_injector.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/service/service.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// The full estimate transcript of `workload` against `pool` under
// `budget` — the bit-identity probe from parallel_dp_test, reused to
// check per-epoch determinism after the storm.
std::vector<std::string> Transcript(const std::vector<Query>& workload,
                                    const SitPool& pool,
                                    const EstimationBudget* budget) {
  DiffError diff;
  std::vector<std::string> lines;
  for (const Query& q : workload) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    GetSelectivity gs(&q, &provider, budget);
    for (PredSet p : SubPlanFamily(q)) {
      const SelEstimate e = gs.Compute(p);
      lines.push_back(Hex(e.selectivity) + " " + Hex(e.error));
    }
  }
  return lines;
}

class ServiceSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SnowflakeOptions sopt;
    sopt.scale = 0.01;
    catalog_ = BuildSnowflake(sopt);
    cache_ = std::make_unique<CardinalityCache>();
    evaluator_ = std::make_unique<Evaluator>(&catalog_, cache_.get());
    builder_ = std::make_unique<SitBuilder>(evaluator_.get(),
                                            SitBuildOptions{});
    WorkloadOptions wopt;
    wopt.num_queries = 3;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    wopt.seed = 7;
    workload_ = GenerateWorkload(catalog_, evaluator_.get(), wopt);
    // Two statistics generations to rotate between epochs: the SIT-rich
    // pool and the base-histograms-only pool estimate differently, so a
    // session pinned to the wrong epoch would be visible.
    pools_.push_back(GenerateSitPool(workload_, 2, *builder_));
    pools_.push_back(GenerateSitPool(workload_, 0, *builder_));
  }

  Catalog catalog_;
  std::unique_ptr<CardinalityCache> cache_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<SitBuilder> builder_;
  std::vector<Query> workload_;
  std::vector<SitPool> pools_;
};

TEST_F(ServiceSoakTest, ChaosSoak) {
  constexpr int kSessionThreads = 8;
  constexpr int kSubmitsPerThread = 24;
  constexpr int kRefreshes = 30;

  ServiceOptions options;
  options.admission.max_concurrent = 4;
  options.admission.queue_limit = 2;  // small queue: shedding must happen
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_seconds = 1e-5;
  options.retry.max_backoff_seconds = 1e-3;
  options.breaker.open_after = 2;
  options.breaker.close_after = 2;
  options.max_queue_wait_seconds = 0.02;
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pools_[0]).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> err_count{0};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> out_of_range{0};

  std::vector<std::thread> sessions;
  for (int t = 0; t < kSessionThreads; ++t) {
    sessions.emplace_back([&, t]() {
      const std::string tenant = "tenant-" + std::to_string(t % 3);
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const Query& q = workload_[(t + i) % workload_.size()];
        SubmitOptions submit;
        // A mix of tight, generous, and absent deadlines.
        submit.deadline_seconds =
            i % 3 == 0 ? 0.0 : (i % 3 == 1 ? 0.05 : 5.0);
        const StatusOr<ServiceEstimate> r =
            service.Submit(tenant, q, submit);
        if (r.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          const double sel = r.value().selectivity;
          if (!(sel >= 0.0) || !(sel <= 1.0) ||
              !(r.value().cardinality >= 0.0)) {
            out_of_range.fetch_add(1, std::memory_order_relaxed);
          }
          if (r.value().epoch == 0) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          err_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread refresher([&]() {
    for (int i = 0; i < kRefreshes; ++i) {
      const SitPool& pool = pools_[i % pools_.size()];
      if (i % 5 == 3) {
        // Some refreshes fail mid-swap; the current epoch must survive.
        const ScopedFault fault(Fault::kFailSnapshotSwap);
        const StatusOr<uint64_t> r = service.Refresh(catalog_, pool);
        EXPECT_FALSE(r.ok());
      } else if (i % 5 == 4) {
        // Some refreshes are slow; estimates must keep flowing (the stall
        // happens before any lock, never under the epoch lock).
        const ScopedFault fault(Fault::kSlowRefresh);
        EXPECT_TRUE(service.Refresh(catalog_, pool).ok());
      } else {
        EXPECT_TRUE(service.Refresh(catalog_, pool).ok());
      }
      std::this_thread::yield();
    }
  });

  std::thread fault_pulser([&]() {
    int pulse = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (pulse++ % 3) {
        case 0: {
          const ScopedFault fault(Fault::kThrowAtomicLookup);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          break;
        }
        case 1: {
          // Slow lookups on a slice of the lattice only.
          const ScopedSlowLookupMask mask(0x5u);
          const ScopedFault fault(Fault::kSlowAtomicLookup);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          break;
        }
        default:
          // Fault-free window so sessions also see clean estimates.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          break;
      }
    }
  });

  for (std::thread& th : sessions) th.join();
  stop.store(true, std::memory_order_relaxed);
  refresher.join();
  fault_pulser.join();

  // Books balance exactly at quiescence.
  const ServiceStatsSnapshot stats = service.Stats();
  const uint64_t expected_submits =
      static_cast<uint64_t>(kSessionThreads) * kSubmitsPerThread;
  EXPECT_EQ(stats.submitted, expected_submits);
  EXPECT_EQ(stats.completed, ok_count.load());
  EXPECT_EQ(stats.failed, err_count.load());
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.latency_count, stats.submitted);
  EXPECT_GT(stats.completed, 0u);  // the storm never starved everyone

  // Zero torn snapshots, zero out-of-range estimates.
  EXPECT_EQ(stats.incoherent_snapshots, 0u);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(out_of_range.load(), 0u);

  // Refresh accounting: every injected swap failure was counted, every
  // successful refresh published (plus the seed epoch).
  EXPECT_EQ(stats.failed_swaps, static_cast<uint64_t>(kRefreshes / 5));
  EXPECT_EQ(stats.epochs_published,
            1u + kRefreshes - static_cast<uint64_t>(kRefreshes / 5));

  // Every session handle has been dropped: the storm's epochs retire and
  // only the current one stays live.
  EXPECT_EQ(service.live_epochs(), 1u);

  // Per-epoch determinism after the chaos: both statistics generations
  // still give bit-identical sequential vs parallel transcripts — the
  // storm did not corrupt any shared statistics state.
  for (const SitPool& pool : pools_) {
    const std::vector<std::string> sequential =
        Transcript(workload_, pool, nullptr);
    EstimationBudget parallel_budget;
    parallel_budget.threads = 4;
    const std::vector<std::string> parallel =
        Transcript(workload_, pool, &parallel_budget);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential[i], parallel[i]) << "estimate " << i;
    }
  }
}

// A focused variant: sessions pin handles across refreshes and verify
// their pinned epoch's pool keeps estimating while newer epochs publish.
TEST_F(ServiceSoakTest, PinnedEpochSurvivesRefreshStorm) {
  EstimationService service;
  ASSERT_TRUE(service.Refresh(catalog_, pools_[0]).ok());

  std::atomic<bool> stop{false};
  std::thread refresher([&]() {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(
          service.Refresh(catalog_, pools_[++i % pools_.size()]).ok());
      std::this_thread::yield();
    }
  });

  const Query& q = workload_.front();
  double first = -1.0;
  uint64_t distinct_epochs = 0, last_epoch = 0;
  for (int i = 0; i < 40; ++i) {
    const StatusOr<ServiceEstimate> r = service.Submit("t", q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r.value().epoch != last_epoch) {
      ++distinct_epochs;
      last_epoch = r.value().epoch;
    }
    // The two pools alternate, so selectivities come from a two-value
    // set; whichever epoch a submit pinned, its estimate is finite and
    // in range.
    ASSERT_GE(r.value().selectivity, 0.0);
    ASSERT_LE(r.value().selectivity, 1.0);
    if (first < 0.0) first = r.value().selectivity;
  }
  stop.store(true, std::memory_order_relaxed);
  refresher.join();
  EXPECT_GT(distinct_epochs, 1u);  // the storm really rotated under us
  EXPECT_EQ(service.Stats().incoherent_snapshots, 0u);
}

// A maintenance thread streams ApplyDelta batches (inserts sealing new
// parts, deletes shrinking old ones) while session threads hammer
// Submit. The maintainer mutates its own catalog under maintenance_mu_;
// submits run against immutable snapshot copies, so the only shared
// state is the atomic epoch swap — TSan (the CI chaos-soak step) proves
// that claim.
TEST(ServiceDeltaSoakTest, DeltaMaintenanceStorm) {
  constexpr int kSessionThreads = 4;
  constexpr int kSubmitsPerThread = 12;
  constexpr int kDeltas = 15;

  Catalog catalog;
  {
    Table fact = test::MakeTable("F", {"a", "d_id"}, {});
    int row = 0;
    for (int p = 0; p < 3; ++p) {
      for (int r = 0; r < 20; ++r, ++row) {
        fact.AppendRow({(row * 7) % 100, row % 10});
      }
      fact.SealTail();
    }
    catalog.AddTable(std::move(fact));
    std::vector<std::vector<int64_t>> dim_rows;
    for (int64_t i = 0; i < 10; ++i) dim_rows.push_back({i, i * 3});
    Table dim = test::MakeTable("D", {"pk", "c"}, dim_rows, {true, false});
    dim.SealTail();
    catalog.AddTable(std::move(dim));
  }
  const Query query({Predicate::Join({0, 1}, {1, 0}),
                     Predicate::Filter({0, 0}, 10, 60)});
  PartStatsMaintainer maintainer(&catalog, {query}, 1,
                                 {HistogramType::kMaxDiff, 64});

  EstimationService service;
  ASSERT_TRUE(service.EnableDeltaMaintenance(&maintainer).ok());

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> bad_estimates{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> deltas_failed{0};

  std::thread maintenance([&]() {
    for (int i = 0; i < kDeltas; ++i) {
      DeltaBatch batch;
      batch.table = 0;
      batch.insert_rows = {{(i * 13) % 100, i % 10},
                           {(i * 31) % 100, (i + 3) % 10}};
      if (i % 4 == 3) batch.delete_rows = {0};
      if (!service.ApplyDelta(batch).ok()) {
        deltas_failed.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> sessions;
  for (int t = 0; t < kSessionThreads; ++t) {
    sessions.emplace_back([&, t]() {
      const std::string tenant = "tenant-" + std::to_string(t);
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const StatusOr<ServiceEstimate> r = service.Submit(tenant, query);
        if (!r.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ok_count.fetch_add(1, std::memory_order_relaxed);
        const double sel = r.value().selectivity;
        if (!(sel >= 0.0) || !(sel <= 1.0) || r.value().epoch == 0) {
          bad_estimates.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  maintenance.join();
  for (std::thread& s : sessions) s.join();

  EXPECT_EQ(deltas_failed.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(bad_estimates.load(), 0u);
  EXPECT_EQ(ok_count.load(),
            static_cast<uint64_t>(kSessionThreads * kSubmitsPerThread));
  // Every delta published exactly one epoch on top of the enable epoch.
  EXPECT_EQ(service.current_epoch(), 1u + kDeltas);
  EXPECT_EQ(service.Stats().incoherent_snapshots, 0u);

  // At quiescence the service serves exactly the maintainer's final
  // statistics, bit for bit.
  SitPool pool = *maintainer.MergedPool().value();
  Estimator direct(&maintainer.catalog(), &pool, Ranking::kDiff);
  const StatusOr<double> sel = direct.TryEstimateSelectivity(query);
  ASSERT_TRUE(sel.ok());
  const StatusOr<ServiceEstimate> final_submit = service.Submit("t", query);
  ASSERT_TRUE(final_submit.ok());
  EXPECT_EQ(final_submit.value().selectivity, sel.value());
}

}  // namespace
}  // namespace condsel
