// Tests for the Cascades-lite memo and the Section 4.2 integration.

#include <gtest/gtest.h>

#include "condsel/exec/evaluator.h"
#include "condsel/optimizer/integration.h"
#include "condsel/optimizer/memo.h"
#include "condsel/optimizer/rules.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

Query ThreeTableQuery() {
  return Query({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)});    // 3
}

TEST(MemoTest, GroupsDeduplicate) {
  const Query q = ThreeTableQuery();
  Memo memo(&q);
  const int a = memo.GetOrCreateGroup(0b0011, q.TablesOfSubset(0b0011));
  const int b = memo.GetOrCreateGroup(0b0011, q.TablesOfSubset(0b0011));
  EXPECT_EQ(a, b);
  EXPECT_EQ(memo.num_groups(), 1);
}

TEST(MemoTest, ExplorationGeneratesAllLastOperators) {
  const Query q = ThreeTableQuery();
  Memo memo(&q);
  const int root = BuildAndExplore(&memo, q.all_predicates());
  const Group& g = memo.group(root);
  // Every one of the 4 predicates can be applied last here: both filters
  // (SELECT entries) and both joins (each splits the 3 tables in two).
  EXPECT_EQ(g.exprs.size(), 4u);
  int selects = 0, joins = 0;
  for (const MemoExpr& e : g.exprs) {
    if (e.op == OpKind::kSelect) {
      ++selects;
      EXPECT_EQ(e.inputs.size(), 1u);
    }
    if (e.op == OpKind::kJoin) {
      ++joins;
      EXPECT_EQ(e.inputs.size(), 2u);
    }
  }
  EXPECT_EQ(selects, 2);
  EXPECT_EQ(joins, 2);
}

TEST(MemoTest, ScanGroupsAreLeaves) {
  const Query q = ThreeTableQuery();
  Memo memo(&q);
  BuildAndExplore(&memo, q.all_predicates());
  int scans = 0;
  for (int i = 0; i < memo.num_groups(); ++i) {
    const Group& g = memo.group(i);
    if (g.preds == 0) {
      ASSERT_EQ(g.exprs.size(), 1u);
      EXPECT_EQ(g.exprs[0].op, OpKind::kScan);
      EXPECT_TRUE(g.exprs[0].inputs.empty());
      ++scans;
    }
  }
  EXPECT_GE(scans, 1);
}

TEST(MemoTest, EveryEntrySplitsItsGroup) {
  const Query q = ThreeTableQuery();
  Memo memo(&q);
  BuildAndExplore(&memo, q.all_predicates());
  for (int i = 0; i < memo.num_groups(); ++i) {
    const Group& g = memo.group(i);
    for (const MemoExpr& e : g.exprs) {
      if (e.op == OpKind::kScan) continue;
      PredSet inputs = e.predicate >= 0 ? (1u << e.predicate) : 0u;
      TableSet tables = 0;
      for (int in : e.inputs) {
        inputs |= memo.group(in).preds;
        tables |= memo.group(in).tables;
      }
      EXPECT_EQ(inputs, g.preds);
      EXPECT_EQ(tables, g.tables);
    }
  }
}

TEST(MemoTest, ToStringMentionsOperators) {
  const Query q = ThreeTableQuery();
  Memo memo(&q);
  BuildAndExplore(&memo, q.all_predicates());
  const std::string s = memo.ToString();
  EXPECT_NE(s.find("JOIN"), std::string::npos);
  EXPECT_NE(s.find("SELECT"), std::string::npos);
  EXPECT_NE(s.find("SCAN"), std::string::npos);
}

class CoupledTest : public ::testing::Test {
 protected:
  CoupledTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_(ThreeTableQuery()),
        matcher_(&pool_) {}

  void BuildPool(int j) {
    pool_ = GenerateSitPool({query_}, j, builder_);
    matcher_.BindQuery(&query_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
  SitMatcher matcher_;
  NIndError n_ind_;
};

TEST_F(CoupledTest, AgreesWithDpOnSinglePredicates) {
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  AtomicSelectivityProvider fa2(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa2);
  for (int i = 0; i < query_.num_predicates(); ++i) {
    EXPECT_NEAR(coupled.Estimate(1u << i).selectivity,
                gs.Compute(1u << i).selectivity, 1e-12);
  }
}

TEST_F(CoupledTest, NeverBeatsFullDp) {
  // Section 4.2: the coupled search is pruned by the optimizer, so its
  // best error is >= the full DP's (and often equal).
  for (int j = 0; j <= 2; ++j) {
    BuildPool(j);
    AtomicSelectivityProvider fa(&matcher_, &n_ind_);
    OptimizerCoupledEstimator coupled(&query_, &fa);
    AtomicSelectivityProvider fa2(&matcher_, &n_ind_);
    GetSelectivity gs(&query_, &fa2);
    const double coupled_err =
        coupled.Estimate(query_.all_predicates()).error;
    const double dp_err = gs.Compute(query_.all_predicates()).error;
    EXPECT_GE(coupled_err, dp_err - 1e-12) << "J" << j;
  }
}

TEST_F(CoupledTest, MemoizesGroups) {
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  coupled.Estimate(query_.all_predicates());
  const uint64_t entries = coupled.entries_considered();
  // Sub-plan requests are answered from the per-group cache.
  coupled.Estimate(0b0011);
  EXPECT_EQ(coupled.entries_considered(), entries);
}

TEST_F(CoupledTest, EstimatesAreProbabilities) {
  BuildPool(2);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  for (PredSet p = 1; p <= query_.all_predicates(); ++p) {
    const double sel = coupled.Estimate(p).selectivity;
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0 + 1e-9);
  }
}

TEST_F(CoupledTest, TryEstimateRejectsForeignPredicates) {
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  // Bit 5 is outside the bound query's 4 predicates.
  const StatusOr<SelEstimate> r = coupled.TryEstimate(1u << 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CoupledTest, TryEstimateReportsUnestimableGroups) {
  // An empty pool approximates nothing: every memo group must come back
  // FAILED_PRECONDITION instead of aborting the process.
  pool_ = SitPool();
  matcher_.BindQuery(&query_);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  const StatusOr<SelEstimate> r =
      coupled.TryEstimate(query_.all_predicates());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("no estimable entry"),
            std::string::npos);
}

TEST_F(CoupledTest, TryEstimateMatchesEstimateOnSuccess) {
  BuildPool(2);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  OptimizerCoupledEstimator coupled(&query_, &fa);
  const StatusOr<SelEstimate> r =
      coupled.TryEstimate(query_.all_predicates());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().selectivity,
            coupled.Estimate(query_.all_predicates()).selectivity);
  EXPECT_EQ(r.value().error, coupled.Estimate(query_.all_predicates()).error);
}

}  // namespace
}  // namespace condsel
