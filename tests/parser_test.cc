// Tests for the SQL-ish parser.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "condsel/parser/parser.h"
#include "test_util.h"

namespace condsel {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : catalog_(test::MakeTinyCatalog()) {}
  Catalog catalog_;
};

TEST_F(ParserTest, MinimalQuery) {
  const ParseResult r =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM R");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.num_predicates(), 0);
}

TEST_F(ParserTest, JoinAndFilters) {
  const ParseResult r = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R, S WHERE R.x = S.y AND R.a BETWEEN 2 AND 6 "
      "AND S.b >= 100");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.num_predicates(), 3);
  EXPECT_EQ(SetSize(r.query.join_predicates()), 1);
  EXPECT_EQ(SetSize(r.query.filter_predicates()), 2);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  const ParseResult r = ParseQuery(
      catalog_, "select count(*) from R where R.a between 1 and 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.num_predicates(), 1);
}

TEST_F(ParserTest, ComparisonOperators) {
  const ParseResult r = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R WHERE R.a < 5 AND R.a > 1 AND R.x <= 30 "
      "AND R.x >= 10 AND R.a = 3");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.query.num_predicates(), 5);
  // "< 5" becomes [min, 4].
  EXPECT_EQ(r.query.predicate(0).hi(), 4);
  // "> 1" becomes [2, max].
  EXPECT_EQ(r.query.predicate(1).lo(), 2);
  // "= 3" is a degenerate range.
  EXPECT_EQ(r.query.predicate(4).lo(), 3);
  EXPECT_EQ(r.query.predicate(4).hi(), 3);
}

TEST_F(ParserTest, JoinCanonicalizedLikeApi) {
  const ParseResult a =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM R, S WHERE R.x = S.y");
  const ParseResult b =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM S, R WHERE S.y = R.x");
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.query.predicate(0), b.query.predicate(0));
}

TEST_F(ParserTest, ErrorUnknownTable) {
  const ParseResult r =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM nope");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nope"), std::string::npos);
}

TEST_F(ParserTest, ErrorUnknownColumn) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.nope = 3");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("R.nope"), std::string::npos);
}

TEST_F(ParserTest, ErrorTableNotInFrom) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE S.b = 100");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("FROM"), std::string::npos);
}

TEST_F(ParserTest, ErrorSelfJoinListedTwice) {
  const ParseResult r =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM R, R");
  EXPECT_FALSE(r.ok);
}

TEST_F(ParserTest, ErrorTrailingGarbage) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.a = 1 GROUP BY R.a");
  EXPECT_FALSE(r.ok);
}

TEST_F(ParserTest, ErrorEmptyRange) {
  // R.a's declared domain starts at 0; "< 0" can never hold.
  const ParseResult r =
      ParseQuery(catalog_, "SELECT COUNT(*) FROM R WHERE R.a < 0");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("selects nothing"), std::string::npos);
}

TEST_F(ParserTest, ErrorBetweenOutOfOrder) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 9 AND 2");
  EXPECT_FALSE(r.ok);
}

TEST_F(ParserTest, ErrorSameTableEquality) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.a = R.x");
  EXPECT_FALSE(r.ok);
}

TEST_F(ParserTest, NegativeNumbers) {
  const ParseResult r = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.a BETWEEN -5 AND 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.predicate(0).lo(), -5);
}

TEST_F(ParserTest, ParsedQueryEvaluatesCorrectly) {
  // End to end: parse, evaluate, compare with a hand-built query.
  const ParseResult r = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R, S WHERE R.x = S.y AND R.a <= 5");
  ASSERT_TRUE(r.ok) << r.error;
  CardinalityCache cache;
  Evaluator eval(&catalog_, &cache);
  const double parsed =
      eval.Cardinality(r.query, r.query.all_predicates());
  const Query manual({Predicate::Join({0, 1}, {1, 0}),
                      Predicate::Filter({0, 0}, 0, 5)});
  EXPECT_DOUBLE_EQ(parsed,
                   eval.Cardinality(manual, manual.all_predicates()));
}

TEST_F(ParserTest, HardeningCorpusAlwaysCleanError) {
  // Adversarial inputs collected from the robustness pass: every one must
  // produce ok=false with a non-empty error — never a crash, hang, or UB.
  const std::vector<std::string> corpus = {
      "",
      " ",
      "\t\n",
      "SELECT",
      "SELECT COUNT",
      "SELECT COUNT(",
      "SELECT COUNT(*",
      "SELECT COUNT(*)",
      "SELECT COUNT(*) FROM",
      "SELECT COUNT(*) FROM ,",
      "SELECT COUNT(*) FROM R,",
      "SELECT COUNT(*) FROM R WHERE",
      "SELECT COUNT(*) FROM R WHERE AND",
      "SELECT COUNT(*) FROM R WHERE R.a = 1 AND",
      "SELECT COUNT(*) FROM R WHERE R.a = 1 AND AND R.x = 2",
      "SELECT COUNT(*) FROM R WHERE R.",
      "SELECT COUNT(*) FROM R WHERE R.a",
      "SELECT COUNT(*) FROM R WHERE R.a =",
      "SELECT COUNT(*) FROM R WHERE R.a BETWEEN",
      "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 1",
      "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 1 AND",
      "SELECT COUNT(*) FROM R WHERE R.a <> 3",
      "SELECT COUNT(*) FROM R WHERE R.a != 3",
      "SELECT COUNT(*) FROM R WHERE R.a = R.a",
      "SELECT COUNT(*) FROM nope WHERE nope.a = 1",
      "SELECT COUNT(*) FROM R WHERE R.a = 99999999999999999999999999",
      "SELECT COUNT(*) FROM R WHERE R.a = -99999999999999999999999999",
      "SELECT COUNT(*) FROM R WHERE R.a BETWEEN -99999999999999999999 "
      "AND 99999999999999999999",
      "SELECT COUNT(*) FROM R WHERE R.a = 1 ; DROP TABLE R",
      std::string("SELECT COUNT(*) FROM R\0WHERE R.a = 1", 36),
      "SELECT COUNT(*) FROM R WHERE R.a = 0x10",
      "SELECT COUNT(*) FROM R WHERE R.a = 1.5",
      "select count ( * ) from",
  };
  for (const std::string& sql : corpus) {
    const ParseResult r = ParseQuery(catalog_, sql);
    EXPECT_FALSE(r.ok) << "accepted: " << sql;
    EXPECT_FALSE(r.error.empty()) << sql;
  }
}

TEST_F(ParserTest, GiantLiteralIsRangeError) {
  // Out-of-int64 literals used to hit std::atoll's undefined overflow;
  // they must now surface as an explicit range error.
  const ParseResult r = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R WHERE R.a = 123456789012345678901234567890");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST_F(ParserTest, Int64ExtremesDoNotOverflow) {
  // "< INT64_MIN" / "> INT64_MAX" would need v∓1 outside int64; both are
  // rejected as empty predicates instead of overflowing.
  const ParseResult lo = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R WHERE R.a < -9223372036854775808");
  EXPECT_FALSE(lo.ok);
  const ParseResult hi = ParseQuery(
      catalog_,
      "SELECT COUNT(*) FROM R WHERE R.a > 9223372036854775807");
  EXPECT_FALSE(hi.ok);
  // Ordinary strict comparisons keep working.
  const ParseResult in = ParseQuery(
      catalog_, "SELECT COUNT(*) FROM R WHERE R.a < 1000");
  EXPECT_TRUE(in.ok) << in.error;
}

TEST_F(ParserTest, FuzzedInputsNeverCrash) {
  // Random token soup: every outcome must be a clean ok/error result.
  Rng rng(31337);
  const std::vector<std::string> tokens = {
      "SELECT", "COUNT", "(", ")", "*", "FROM", "WHERE", "AND", "BETWEEN",
      "R", "S", "T", ".", ",", "a", "x", "y", "b", "z", "c", "=", "<",
      ">", "<=", ">=", "1", "42", "-7", "nope", "_x1", "<>",
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.NextBelow(24));
    for (int i = 0; i < len; ++i) {
      sql += tokens[static_cast<size_t>(rng.NextBelow(tokens.size()))];
      if (rng.NextBool(0.7)) sql += " ";
    }
    const ParseResult r = ParseQuery(catalog_, sql);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << sql;
    }
  }
}

TEST_F(ParserTest, MutatedValidQueryNeverCrashes) {
  const std::string base =
      "SELECT COUNT(*) FROM R, S WHERE R.x = S.y AND R.a BETWEEN 2 AND 6";
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string sql = base;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(sql.size()));
      switch (rng.NextBelow(3)) {
        case 0:
          sql[pos] = static_cast<char>('!' + rng.NextBelow(90));
          break;
        case 1:
          sql.erase(pos, 1);
          break;
        default:
          sql.insert(pos, 1,
                     static_cast<char>('!' + rng.NextBelow(90)));
          break;
      }
      if (sql.empty()) sql = " ";
    }
    ParseQuery(catalog_, sql);  // must not crash or hang
  }
}

}  // namespace
}  // namespace condsel
