// Tests for decomposition counting and Lemma 1's bounds.

#include <gtest/gtest.h>

#include <set>

#include "condsel/selectivity/decomposition.h"

namespace condsel {
namespace {

TEST(DecompositionCountTest, SmallValuesByHand) {
  // T(1)=1. T(2): {p1p2}, {p1}{p2}, {p2}{p1} = 3.
  // T(3) = C(3,1)T(2) + C(3,2)T(1) + C(3,3)T(0) = 9 + 3 + 1 = 13.
  EXPECT_EQ(CountDecompositions(1), 1u);
  EXPECT_EQ(CountDecompositions(2), 3u);
  EXPECT_EQ(CountDecompositions(3), 13u);
  EXPECT_EQ(CountDecompositions(4), 75u);
  EXPECT_EQ(CountDecompositions(5), 541u);
}

TEST(DecompositionCountTest, MatchesEnumerationUpTo6) {
  for (int n = 1; n <= 6; ++n) {
    const PredSet full = (1u << n) - 1;
    EXPECT_EQ(CountChainDecompositions(full), CountDecompositions(n))
        << "n=" << n;
  }
}

TEST(DecompositionCountTest, EnumerationProducesValidDistinctChains) {
  const PredSet full = 0b1111;
  std::set<std::vector<std::pair<PredSet, PredSet>>> seen;
  EnumerateChainDecompositions(full, [&](const Decomposition& d) {
    EXPECT_TRUE(IsChainDecomposition(full, d));
    std::vector<std::pair<PredSet, PredSet>> key;
    for (const Factor& f : d) key.emplace_back(f.p, f.q);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate decomposition";
  });
  EXPECT_EQ(seen.size(), CountDecompositions(4));
}

TEST(Lemma1Test, BoundsHoldForAllTractableN) {
  for (int n = 1; n <= 12; ++n) {
    EXPECT_TRUE(Lemma1LowerBoundHolds(n)) << "lower bound fails at " << n;
    EXPECT_TRUE(Lemma1UpperBoundHolds(n)) << "upper bound fails at " << n;
  }
}

TEST(CombinatoricsTest, FactorialAndBinomial) {
  EXPECT_EQ(Factorial(0), 1u);
  EXPECT_EQ(Factorial(5), 120u);
  EXPECT_EQ(Factorial(10), 3628800u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 5), 252u);
  EXPECT_EQ(Binomial(7, 7), 1u);
}

TEST(DecompositionCountTest, GrowthIsFactorialLike) {
  // The ratio T(n+1)/T(n) must exceed n+2 (from the Lemma 1 proof).
  for (int n = 1; n <= 11; ++n) {
    const double ratio =
        static_cast<double>(CountDecompositions(n + 1)) /
        static_cast<double>(CountDecompositions(n));
    EXPECT_GE(ratio, static_cast<double>(n + 2) - 1e-9) << "n=" << n;
  }
}

}  // namespace
}  // namespace condsel
