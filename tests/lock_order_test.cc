// Runtime lock-order enforcement (common/ordered_mutex.h).
//
// Two halves. The death tests prove the checker *can* fail: a
// deliberately inverted acquisition, a self-relock, and a same-rank pair
// taken against address order must each abort with both mutex names and
// ranks in the message — the same discipline as the analyzer's mutation
// fixtures (a checker whose failure mode is unproven is decoration). The
// soak proves the declared order *holds* under real contention: a
// service Submit storm against snapshot refreshes plus parallel
// GetSelectivity drivers, all with enforcement forced on; the run
// completing (no abort) is the assertion of zero violations, and
// checks_performed() advancing proves enforcement was actually live —
// an env-var typo cannot silently turn the soak into a no-op.
//
// The soak also asserts the overload-telemetry fields the census in
// tools/condsel_model.py tracks (queue-full/timeout rejections and the
// latency aggregate), keeping every ServiceStatsSnapshot field
// test-referenced.
//
// CI runs this suite in the TSan job's lock-order step with
// CONDSEL_LOCK_ORDER=1 exported; the tests force-enable enforcement
// themselves as well so a plain `ctest` run checks the same contract.

#include "condsel/common/ordered_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "condsel/common/fault_injector.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/service/service.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

namespace loi = lock_order_internal;

class EnforcementScope {
 public:
  explicit EnforcementScope(bool enabled) {
    loi::ForceEnabledForTesting(enabled);
  }
  ~EnforcementScope() { loi::ForceEnabledForTesting(true); }
};

TEST(OrderedMutexTest, InOrderAcquisitionIsCountedAndClean) {
  const EnforcementScope scope(true);
  OrderedMutex outer(10, "test_outer");
  OrderedMutex inner(20, "test_inner");
  const uint64_t before = loi::checks_performed();
  {
    const std::lock_guard<OrderedMutex> a(outer);
    const std::lock_guard<OrderedMutex> b(inner);
  }
  {
    // Re-acquiring after release is not nesting; any order is legal.
    const std::lock_guard<OrderedMutex> b(inner);
  }
  EXPECT_EQ(loi::checks_performed(), before + 3);
}

TEST(OrderedMutexTest, DisabledEnforcementChecksNothing) {
  const EnforcementScope scope(false);
  OrderedMutex outer(10, "test_outer");
  OrderedMutex inner(20, "test_inner");
  const uint64_t before = loi::checks_performed();
  {
    // Inverted, but harmless without a concurrent opposite-order holder;
    // with enforcement off it must neither abort nor count.
    const std::lock_guard<OrderedMutex> b(inner);
    // condsel-model: allow(lock-cycle)
    const std::lock_guard<OrderedMutex> a(outer);
  }
  EXPECT_EQ(loi::checks_performed(), before);
}

TEST(OrderedMutexTest, SharedAndExclusiveInterleaveInOrder) {
  const EnforcementScope scope(true);
  OrderedMutex outer(10, "test_outer");
  OrderedSharedMutex inner(20, "test_shared_inner");
  {
    const std::lock_guard<OrderedMutex> a(outer);
    const std::shared_lock<OrderedSharedMutex> b(inner);
  }
  {
    const std::unique_lock<OrderedSharedMutex> w(inner);
  }
}

TEST(OrderedMutexTest, SameRankAscendingAddressIsLegal) {
  const EnforcementScope scope(true);
  // Same rank, distinct instances — the worker-deque shape. Ascending
  // address is the sanctioned pair order.
  OrderedMutex a(50, "pair_a");
  OrderedMutex b(50, "pair_b");
  OrderedMutex* lo = &a < &b ? &a : &b;
  OrderedMutex* hi = &a < &b ? &b : &a;
  const std::lock_guard<OrderedMutex> first(*lo);
  const std::lock_guard<OrderedMutex> second(*hi);
}

TEST(OrderedMutexDeathTest, InvertedAcquisitionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        loi::ForceEnabledForTesting(true);
        OrderedMutex outer(10, "death_outer");
        OrderedMutex inner(20, "death_inner");
        const std::lock_guard<OrderedMutex> b(inner);
        // condsel-model: allow(lock-cycle)
        const std::lock_guard<OrderedMutex> a(outer);
      },
      "lock-order violation.*\"death_outer\".*rank 10.*"
      "\"death_inner\".*rank 20");
}

TEST(OrderedMutexDeathTest, SharedAcquisitionIsOrderCheckedToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        loi::ForceEnabledForTesting(true);
        OrderedSharedMutex outer(10, "death_shared_outer");
        OrderedMutex inner(20, "death_inner");
        const std::lock_guard<OrderedMutex> b(inner);
        // condsel-model: allow(lock-cycle)
        const std::shared_lock<OrderedSharedMutex> a(outer);
      },
      "lock-order violation.*\"death_shared_outer\".*rank 10.*"
      "\"death_inner\".*rank 20");
}

TEST(OrderedMutexDeathTest, SelfRelockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        loi::ForceEnabledForTesting(true);
        OrderedMutex mu(10, "death_self");
        const std::lock_guard<OrderedMutex> a(mu);
        const std::lock_guard<OrderedMutex> b(mu);
      },
      "lock-order violation.*\"death_self\".*rank 10.*"
      "\"death_self\".*rank 10");
}

TEST(OrderedMutexDeathTest, SameRankDescendingAddressAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        loi::ForceEnabledForTesting(true);
        OrderedMutex a(50, "death_pair_a");
        OrderedMutex b(50, "death_pair_b");
        OrderedMutex* lo = &a < &b ? &a : &b;
        OrderedMutex* hi = &a < &b ? &b : &a;
        const std::lock_guard<OrderedMutex> first(*hi);
        // condsel-model: allow(lock-cycle)
        const std::lock_guard<OrderedMutex> second(*lo);
      },
      "lock-order violation.*rank 50.*rank 50");
}

// ------------------------------------------------------------------------
// The soak: the migrated subsystems under storm, enforcement live.

class LockOrderSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loi::ForceEnabledForTesting(true);
    SnowflakeOptions sopt;
    sopt.scale = 0.01;
    catalog_ = BuildSnowflake(sopt);
    cache_ = std::make_unique<CardinalityCache>();
    evaluator_ = std::make_unique<Evaluator>(&catalog_, cache_.get());
    builder_ = std::make_unique<SitBuilder>(evaluator_.get(),
                                            SitBuildOptions{});
    WorkloadOptions wopt;
    wopt.num_queries = 3;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    wopt.seed = 11;
    workload_ = GenerateWorkload(catalog_, evaluator_.get(), wopt);
    pools_.push_back(GenerateSitPool(workload_, 2, *builder_));
    pools_.push_back(GenerateSitPool(workload_, 0, *builder_));
  }

  Catalog catalog_;
  std::unique_ptr<CardinalityCache> cache_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<SitBuilder> builder_;
  std::vector<Query> workload_;
  std::vector<SitPool> pools_;
};

TEST_F(LockOrderSoakTest, StormTripsNoOrderViolation) {
  constexpr int kSessionThreads = 6;
  constexpr int kSubmitsPerThread = 16;
  constexpr int kRefreshes = 20;
  constexpr int kComputeThreads = 2;

  ServiceOptions options;
  options.admission.max_concurrent = 3;
  options.admission.queue_limit = 1;  // tiny queue: shedding + timeouts
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_seconds = 1e-5;
  options.retry.max_backoff_seconds = 1e-3;
  options.max_queue_wait_seconds = 0.005;
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pools_[0]).ok());

  const uint64_t checks_before = loi::checks_performed();
  std::atomic<bool> stop{false};

  // Session storm: admission (kAdmission) -> snapshot acquire ->
  // estimation (memo, deques, error slot) -> stats settle
  // (kGsStatsLedger) -> breaker (kCircuitBreaker), every path nested
  // under the declared order or the process dies.
  std::vector<std::thread> sessions;
  for (int t = 0; t < kSessionThreads; ++t) {
    sessions.emplace_back([&, t]() {
      const std::string tenant = "tenant-" + std::to_string(t % 2);
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const Query& q = workload_[(t + i) % workload_.size()];
        SubmitOptions submit;
        submit.deadline_seconds = i % 2 == 0 ? 0.05 : 0.0;
        (void)service.Submit(tenant, q, submit);
      }
      // Feedback exercises feedback_mu_ -> jitter_mu_ and
      // feedback_mu_ -> CardinalityCache::mu_ nesting.
      (void)service.ObserveFeedback(tenant, workload_[t % workload_.size()]);
    });
  }

  // Refresh storm: refresh_mu_ -> epoch_mu_ nesting, with slow and
  // failing refreshes pulsing FaultInjector::mu_ writes (a leaf under
  // everything).
  std::thread refresher([&]() {
    for (int i = 0; i < kRefreshes; ++i) {
      const SitPool& pool = pools_[i % pools_.size()];
      if (i % 4 == 3) {
        const ScopedFault fault(Fault::kSlowRefresh);
        EXPECT_TRUE(service.Refresh(catalog_, pool).ok());
      } else {
        EXPECT_TRUE(service.Refresh(catalog_, pool).ok());
      }
      std::this_thread::yield();
    }
  });

  // Parallel drivers outside the service: worker deques (same-rank pair
  // steals), the first-error slot, and the shared-mutex memo.
  std::vector<std::thread> computes;
  for (int c = 0; c < kComputeThreads; ++c) {
    computes.emplace_back([&, c]() {
      DiffError diff;
      EstimationBudget budget;
      budget.threads = 4;
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = workload_[c % workload_.size()];
        SitMatcher matcher(&pools_[c % pools_.size()]);
        matcher.BindQuery(&q);
        AtomicSelectivityProvider provider(&matcher, &diff);
        GetSelectivity gs(&q, &provider, &budget);
        for (PredSet p : SubPlanFamily(q)) (void)gs.Compute(p);
      }
    });
  }

  for (std::thread& th : sessions) th.join();
  refresher.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : computes) th.join();

  // Reaching this line IS the zero-violations assertion (a violation
  // aborts); the counter proves enforcement was live, not defaulted off.
  EXPECT_GT(loi::checks_performed(), checks_before);

  // Overload telemetry the counter census tracks. The tiny queue makes
  // shedding near-certain, but the hard guarantees are the partition
  // bounds and the latency aggregate's internal consistency.
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kSessionThreads) * kSubmitsPerThread);
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_LE(stats.rejected_queue_full + stats.queue_timeouts +
                stats.rejected_quota,
            stats.failed);
  EXPECT_EQ(stats.latency_count, stats.submitted);
  EXPECT_GT(stats.latency_total_seconds, 0.0);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_GE(stats.latency_p99_seconds, stats.latency_p50_seconds);
  // A worker that grabbed a snapshot handle just before the final refresh
  // can briefly keep an older epoch alive; all threads are joined here, so
  // at most the ledger still lists handles the last queries released late.
  EXPECT_GE(service.live_epochs(), 1u);
  EXPECT_LE(service.live_epochs(), 2u);
}

}  // namespace
}  // namespace condsel
