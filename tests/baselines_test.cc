// Tests for the noSit and GVM baselines.

#include <gtest/gtest.h>

#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)}),    // 3
        matcher_(&pool_) {}

  void BuildPool(int max_joins) {
    pool_ = GenerateSitPool({query_}, max_joins, builder_);
    matcher_.BindQuery(&query_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
  SitMatcher matcher_;
};

TEST_F(BaselinesTest, NoSitIsIndependentProduct) {
  BuildPool(2);  // even with SITs available, noSit ignores them
  NoSitEstimator no_sit(&matcher_);
  const double whole = no_sit.Estimate(query_, query_.all_predicates());
  double product = 1.0;
  for (int i = 0; i < query_.num_predicates(); ++i) {
    product *= no_sit.Estimate(query_, 1u << i);
  }
  EXPECT_NEAR(whole, product, 1e-12);
}

TEST_F(BaselinesTest, NoSitSinglePredicatesAreExactHere) {
  BuildPool(0);
  NoSitEstimator no_sit(&matcher_);
  // Per-value buckets make base estimates exact for single predicates.
  EXPECT_NEAR(no_sit.Estimate(query_, 0b0001), 0.5, 1e-12);
  EXPECT_NEAR(no_sit.Estimate(query_, 0b0010), 10.0 / 80.0, 1e-12);
}

TEST_F(BaselinesTest, GvmWithJ0EqualsNoSit) {
  BuildPool(0);
  NoSitEstimator no_sit(&matcher_);
  GvmEstimator gvm(&matcher_);
  for (PredSet p = 1; p <= query_.all_predicates(); ++p) {
    EXPECT_NEAR(gvm.Estimate(query_, p), no_sit.Estimate(query_, p), 1e-12)
        << "subset " << p;
  }
}

TEST_F(BaselinesTest, GvmUsesSitsWhenAvailable) {
  BuildPool(1);
  GvmEstimator gvm(&matcher_);
  NoSitEstimator no_sit(&matcher_);
  // Sel(f_Ra, j_RS): GVM should pick SIT(R.a | RS) and get the exact 7/80
  // instead of the independent 0.5 * 0.125.
  const double est = gvm.Estimate(query_, 0b0011);
  const double truth = eval_.TrueSelectivity(query_, 0b0011);
  const double naive = no_sit.Estimate(query_, 0b0011);
  EXPECT_NEAR(est, truth, 1e-9);
  EXPECT_GT(std::abs(naive - truth), std::abs(est - truth));
}

TEST_F(BaselinesTest, GvmReducesIndependenceAssumptions) {
  BuildPool(0);
  GvmEstimator gvm(&matcher_);
  gvm.Estimate(query_, query_.all_predicates());
  const double n_ind_j0 = gvm.last_n_ind();
  BuildPool(2);
  GvmEstimator gvm2(&matcher_);
  gvm2.Estimate(query_, query_.all_predicates());
  EXPECT_LT(gvm2.last_n_ind(), n_ind_j0);
}

TEST_F(BaselinesTest, GvmEnforcesChainCompatibility) {
  // Two SITs with overlapping-but-incomparable expressions cannot be used
  // together by view matching. Build such a pool by hand: SIT(R.a | j_RS)
  // and SIT(T.c | j_ST) have table-disjoint expressions -> compatible;
  // but SIT(R.a | j_RS) and SIT(T.c | j_RS, j_ST)?? -> nested; use
  // S.b-based SITs to create a conflict instead.
  pool_ = SitPool();
  pool_.Add(builder_.Build(Ra(), {}));
  pool_.Add(builder_.Build(Rx(), {}));
  pool_.Add(builder_.Build(Sy(), {}));
  pool_.Add(builder_.Build(Sb(), {}));
  pool_.Add(builder_.Build(Tz(), {}));
  pool_.Add(builder_.Build(Tc(), {}));
  // Overlapping tables (S in both), neither contains the other:
  pool_.Add(builder_.Build(Ra(), {query_.predicate(1)}));        // R.a | RS
  pool_.Add(builder_.Build(Tc(), {query_.predicate(2)}));        // T.c | ST
  matcher_.BindQuery(&query_);
  GvmEstimator gvm(&matcher_);
  gvm.Estimate(query_, query_.all_predicates());
  // {RS} and {ST} share table S... their table sets are {R,S} and {S,T}:
  // intersecting and incomparable -> GVM may keep only one. Its nInd must
  // therefore stay above the unconstrained optimum of using both.
  // Using one SIT: the other filter pays full independence.
  // nInd(GVM) = joins(2*(4-1)) + f_with_sit(4-1-1) + f_base(3) = 6+2+3=11
  // vs both SITs: 6+2+2 = 10.
  EXPECT_DOUBLE_EQ(gvm.last_n_ind(), 11.0);
}

TEST_F(BaselinesTest, GsNIndDominatesGvmPointwise) {
  // Figure 5's claim: GS-nInd's search space strictly contains GVM's, so
  // per-query absolute error (here: per-subset nInd score) is no worse.
  BuildPool(2);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher_, &n_ind);
  GetSelectivity gs(&query_, &fa);
  GvmEstimator gvm(&matcher_);
  for (PredSet p = 1; p <= query_.all_predicates(); ++p) {
    const double gs_err = gs.Compute(p).error;
    gvm.Estimate(query_, p);
    EXPECT_LE(gs_err, gvm.last_n_ind() + 1e-12) << "subset " << p;
  }
}

TEST_F(BaselinesTest, GvmIsDeterministic) {
  BuildPool(2);
  GvmEstimator a(&matcher_);
  GvmEstimator b(&matcher_);
  EXPECT_DOUBLE_EQ(a.Estimate(query_, query_.all_predicates()),
                   b.Estimate(query_, query_.all_predicates()));
}

}  // namespace
}  // namespace condsel
