// Tests for the rule-driven Cascades exploration: the fixpoint reached
// from one initial plan must coincide with the closed-form exploration.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "condsel/optimizer/rule_engine.h"
#include "condsel/optimizer/rules.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

// Normalized view of a memo: set of (group preds, group tables, op, pred,
// sorted input group signatures). Group ids differ between explorations,
// so inputs are identified by their (preds, tables) signature.
using EntrySig =
    std::tuple<PredSet, TableSet, OpKind, int,
               std::set<std::pair<PredSet, TableSet>>>;

std::set<EntrySig> Normalize(const Memo& memo) {
  std::set<EntrySig> out;
  for (int g = 0; g < memo.num_groups(); ++g) {
    const Group& grp = memo.group(g);
    for (const MemoExpr& e : grp.exprs) {
      std::set<std::pair<PredSet, TableSet>> inputs;
      for (int in : e.inputs) {
        inputs.insert({memo.group(in).preds, memo.group(in).tables});
      }
      out.insert({grp.preds, grp.tables, e.op, e.predicate, inputs});
    }
  }
  return out;
}

void ExpectSameFixpoint(const Query& q, PredSet preds) {
  Memo closed(&q);
  BuildAndExplore(&closed, preds);

  Memo ruled(&q);
  RuleEngineStats stats;
  ExploreWithRules(&ruled, preds, &stats);

  const auto a = Normalize(closed);
  const auto b = Normalize(ruled);
  for (const EntrySig& sig : a) {
    EXPECT_TRUE(b.count(sig))
        << "closed-form entry missing from rule fixpoint (group preds "
        << std::get<0>(sig) << ")";
  }
  for (const EntrySig& sig : b) {
    EXPECT_TRUE(a.count(sig))
        << "rule fixpoint produced an entry the closed form lacks (group "
           "preds "
        << std::get<0>(sig) << ")";
  }
  EXPECT_GT(stats.rounds, 0);
}

TEST(RuleEngineTest, SingleFilter) {
  const Query q({Predicate::Filter(Ra(), 1, 5)});
  ExpectSameFixpoint(q, q.all_predicates());
}

TEST(RuleEngineTest, JoinPlusFilter) {
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Filter(Ra(), 1, 5)});
  ExpectSameFixpoint(q, q.all_predicates());
}

TEST(RuleEngineTest, TwoJoinsTwoFilters) {
  const Query q({Predicate::Filter(Ra(), 1, 5),      // 0
                 Predicate::Join(Rx(), Sy()),        // 1
                 Predicate::Join(Sb(), Tz()),        // 2
                 Predicate::Filter(Tc(), 1, 3)});    // 3
  ExpectSameFixpoint(q, q.all_predicates());
}

TEST(RuleEngineTest, SubsetExploration) {
  const Query q({Predicate::Filter(Ra(), 1, 5),      // 0
                 Predicate::Join(Rx(), Sy()),        // 1
                 Predicate::Join(Sb(), Tz()),        // 2
                 Predicate::Filter(Tc(), 1, 3)});    // 3
  // A connected sub-plan: join R-S with its filter.
  ExpectSameFixpoint(q, 0b0011);
}

TEST(RuleEngineTest, FiltersOnlyOneTable) {
  const Query q({Predicate::Filter(Ra(), 1, 5),
                 Predicate::Filter(Rx(), 10, 40)});
  ExpectSameFixpoint(q, q.all_predicates());
}

TEST(RuleEngineTest, CyclicJoinGraph) {
  // Two join predicates between the same pair of tables (a 2-cycle).
  Catalog c;
  c.AddTable(test::MakeTable("U", {"u1", "u2"}, {{1, 5}, {2, 6}}));
  c.AddTable(test::MakeTable("V", {"v1", "v2"}, {{1, 5}, {2, 9}}));
  const Query q({Predicate::Join({0, 0}, {1, 0}),
                 Predicate::Join({0, 1}, {1, 1})});
  ExpectSameFixpoint(q, q.all_predicates());
}

TEST(RuleEngineTest, StatsAreCounted) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Join(Sb(), Tz()), Predicate::Filter(Tc(), 1, 3)});
  Memo memo(&q);
  RuleEngineStats stats;
  ExploreWithRules(&memo, q.all_predicates(), &stats);
  EXPECT_GT(stats.entries_added, 0u);
  EXPECT_GE(stats.rounds, 2);  // at least one productive + one fixpoint pass
}

}  // namespace
}  // namespace condsel
