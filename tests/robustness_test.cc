// Robustness tests: recoverable errors (Status/StatusOr), budgeted
// estimation with graceful degradation, fault injection, and numeric
// sanitization. The invariant under test throughout: no user-reachable
// input — malformed queries, mismatched pools, empty tables, exhausted
// budgets, corrupted statistics — may abort the process or produce a
// non-finite selectivity through the Try* entry points.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "condsel/api.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/numeric.h"
#include "condsel/common/status.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

// ---------------------------------------------------------------------------
// Status / StatusOr.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("no base histogram for R.a");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no base histogram for R.a");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no base histogram for R.a");
  EXPECT_NE(s, Status::NotFound("something else"));
  EXPECT_NE(s, Status::InvalidArgument("no base histogram for R.a"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kDataLoss,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "");
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<double> v = 0.25;
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value(), 0.25);
  EXPECT_DOUBLE_EQ(*v, 0.25);
  EXPECT_DOUBLE_EQ(v.value_or(1.0), 0.25);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<double> v = Status::ResourceExhausted("budget spent");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  // value_or is the graceful-degradation one-liner.
  EXPECT_DOUBLE_EQ(v.value_or(1.0), 1.0);
}

// ---------------------------------------------------------------------------
// Numeric sanitization.

TEST(NumericTest, SanitizeSelectivity) {
  EXPECT_DOUBLE_EQ(SanitizeSelectivity(0.5), 0.5);
  EXPECT_DOUBLE_EQ(SanitizeSelectivity(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(SanitizeSelectivity(1.5), 1.0);
  EXPECT_DOUBLE_EQ(SanitizeSelectivity(std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(
      SanitizeSelectivity(std::numeric_limits<double>::infinity()), 1.0);
}

TEST(NumericTest, SaturatingMultiplyNeverOverflows) {
  const double huge = std::numeric_limits<double>::max();
  EXPECT_TRUE(std::isfinite(SaturatingMultiply(huge, huge)));
  EXPECT_TRUE(std::isfinite(SaturatingMultiply(huge, 2.0)));
  EXPECT_DOUBLE_EQ(SaturatingMultiply(1e10, 1e10), 1e20);
  EXPECT_DOUBLE_EQ(SaturatingMultiply(std::nan(""), 3.0), 0.0);
}

// ---------------------------------------------------------------------------
// FaultInjector plumbing.

TEST(FaultInjectorTest, ScopedFaultArmsAndRestores) {
  FaultInjector& fi = FaultInjector::Instance();
  ASSERT_FALSE(fi.armed());
  {
    ScopedFault drop(Fault::kDropSits);
    EXPECT_TRUE(fi.armed());
    EXPECT_TRUE(fi.enabled(Fault::kDropSits));
    EXPECT_FALSE(fi.enabled(Fault::kCorruptHistograms));
    {
      ScopedFault corrupt(Fault::kCorruptHistograms);
      EXPECT_TRUE(fi.enabled(Fault::kCorruptHistograms));
    }
    EXPECT_FALSE(fi.enabled(Fault::kCorruptHistograms));
    EXPECT_TRUE(fi.enabled(Fault::kDropSits));
  }
  EXPECT_FALSE(fi.armed());
}

// ---------------------------------------------------------------------------
// Recoverable-error layer of the Estimator facade.

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy())}) {
    pool_ = GenerateSitPool({query_}, 1, builder_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
};

TEST_F(RobustnessTest, TryEstimateMatchesAbortingWrapperOnHappyPath) {
  Estimator est(&catalog_, &pool_);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_DOUBLE_EQ(*sel, est.EstimateSelectivity(query_));
  const StatusOr<double> card = est.TryEstimateCardinality(query_);
  ASSERT_TRUE(card.ok());
  EXPECT_DOUBLE_EQ(*card, est.EstimateCardinality(query_));
  const StatusOr<std::string> why = est.TryExplain(query_);
  ASSERT_TRUE(why.ok());
  EXPECT_NE(why.value().find("Sel("), std::string::npos);
}

TEST_F(RobustnessTest, MissingBaseHistogramIsFailedPrecondition) {
  // A pool holding only R.a's base histogram cannot serve the join.
  SitPool sparse;
  sparse.Add(builder_.Build(Ra(), {}));
  Estimator est(&catalog_, &sparse);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(sel.status().message().find("base histogram"),
            std::string::npos);
  // The filter alone is servable: errors are per-request, not sticky.
  const StatusOr<double> filter_only =
      est.TryEstimateSelectivity(query_, 0b01);
  EXPECT_TRUE(filter_only.ok()) << filter_only.status().ToString();
}

TEST_F(RobustnessTest, UnknownColumnIsInvalidArgument) {
  const Query bad({Predicate::Filter({0, 7}, 1, 5)});
  Estimator est(&catalog_, &pool_);
  const StatusOr<double> sel = est.TryEstimateSelectivity(bad);
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, UnknownTableIsInvalidArgument) {
  const Query bad({Predicate::Filter({9, 0}, 1, 5)});
  Estimator est(&catalog_, &pool_);
  const StatusOr<double> sel = est.TryEstimateSelectivity(bad);
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sel.status().message().find("outside the catalog"),
            std::string::npos);
}

TEST_F(RobustnessTest, ForeignSubsetMaskIsInvalidArgument) {
  Estimator est(&catalog_, &pool_);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_, 0b100);
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sel.status().message().find("subset"), std::string::npos);
}

TEST_F(RobustnessTest, PoolAgainstWrongCatalogIsFailedPrecondition) {
  // The three-table pool deserialized against a one-table database: every
  // request must fail cleanly instead of dereferencing table id 1 or 2.
  Catalog one_table;
  one_table.AddTable(test::MakeTable("only", {"c"}, {{1}, {2}}));
  Estimator est(&one_table, &pool_);
  const Query q({Predicate::Filter({0, 0}, 1, 2)});
  const StatusOr<double> sel = est.TryEstimateSelectivity(q);
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(sel.status().message().find("different database"),
            std::string::npos);
}

TEST_F(RobustnessTest, AbortingWrapperStillAbortsOnBadInput) {
  const Query bad({Predicate::Filter({9, 0}, 1, 5)});
  Estimator est(&catalog_, &pool_);
  EXPECT_DEATH(est.EstimateSelectivity(bad), "outside the catalog");
}

TEST_F(RobustnessTest, EmptyTableYieldsFiniteClampedEstimate) {
  // An empty table produces an empty base histogram; estimates over it
  // must come back finite and in range, not NaN from 0/0.
  Catalog catalog = test::MakeTinyCatalog();
  catalog.AddTable(test::MakeTable("E", {"v"}, {}));
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  SitBuilder builder(&eval, {HistogramType::kMaxDiff, 64});
  const ColumnRef ev{3, 0};
  SitPool pool;
  pool.Add(builder.Build(ev, {}));
  const Query q({Predicate::Filter(ev, 0, 10)});
  Estimator est(&catalog, &pool);
  const StatusOr<double> sel = est.TryEstimateSelectivity(q);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(std::isfinite(*sel));
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  const StatusOr<double> card = est.TryEstimateCardinality(q);
  ASSERT_TRUE(card.ok());
  EXPECT_TRUE(std::isfinite(*card));
  EXPECT_GE(*card, 0.0);
}

// ---------------------------------------------------------------------------
// Budgeted estimation with graceful degradation.

class BudgetTest : public ::testing::Test {
 protected:
  BudgetTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        // Ten predicates: two joins plus eight filters, so the DP faces
        // hundreds of reachable subsets and a tiny budget must bite.
        query_({Predicate::Join(Rx(), Sy()), Predicate::Join(Sb(), Tz()),
                Predicate::Filter(Ra(), 1, 9), Predicate::Filter(Ra(), 2, 8),
                Predicate::Filter(Rx(), 10, 50),
                Predicate::Filter(Sy(), 10, 60),
                Predicate::Filter(Sb(), 100, 300),
                Predicate::Filter(Sb(), 200, 400),
                Predicate::Filter(Tz(), 100, 500),
                Predicate::Filter(Tc(), 1, 5)}) {
    pool_ = GenerateSitPool({query_}, 2, builder_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
};

TEST_F(BudgetTest, UnlimitedByDefault) {
  EXPECT_TRUE(EstimationBudget{}.unlimited());
  Estimator est(&catalog_, &pool_);
  ASSERT_TRUE(est.TryEstimateSelectivity(query_).ok());
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->budget_exhausted);
  EXPECT_EQ(stats->degraded_subproblems, 0u);
}

TEST_F(BudgetTest, TinySubproblemBudgetDegradesGracefully) {
  EstimationBudget budget;
  budget.max_subproblems = 4;
  EXPECT_FALSE(budget.unlimited());
  Estimator est(&catalog_, &pool_, Ranking::kDiff, budget);

  const auto start = std::chrono::steady_clock::now();
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Budget exhaustion is degradation, not an error.
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(std::isfinite(*sel));
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->budget_exhausted);
  EXPECT_GT(stats->degraded_subproblems, 0u);
  EXPECT_LE(stats->subproblems, 4u);
  // A capped search over 10 predicates must return essentially instantly.
  EXPECT_LT(elapsed, 5.0);

  // The degradation is visible in the explanation.
  const StatusOr<std::string> why = est.TryExplain(query_);
  ASSERT_TRUE(why.ok());
  EXPECT_NE(why.value().find("budget exhausted"), std::string::npos);
  EXPECT_NE(why.value().find("degraded"), std::string::npos);
}

TEST_F(BudgetTest, AtomicDecompositionCapBites) {
  EstimationBudget budget;
  budget.max_atomic_decompositions = 1;
  Estimator est(&catalog_, &pool_, Ranking::kDiff, budget);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok());
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->budget_exhausted);
  EXPECT_LE(stats->atomic_considered, 1u);
}

TEST_F(BudgetTest, BudgetAppliesToLiveSessions) {
  Estimator est(&catalog_, &pool_);
  // Warm a session on a subset, then tighten the budget: the same
  // memoized search must honour the new cap for the un-computed subsets.
  ASSERT_TRUE(est.TryEstimateSelectivity(query_, 0b1).ok());
  EstimationBudget tiny;
  tiny.max_subproblems = 1;  // already spent
  est.set_budget(tiny);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok());
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->budget_exhausted);
}

TEST_F(BudgetTest, DeadlineExpiryDegradesDeterministically) {
  EstimationBudget budget;
  budget.deadline_seconds = 3600.0;  // generous: only the fault expires it
  Estimator est(&catalog_, &pool_, Ranking::kDiff, budget);
  ScopedFault expire(Fault::kExpireDeadline);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->budget_exhausted);
  EXPECT_GT(stats->degraded_subproblems, 0u);
}

TEST_F(BudgetTest, DeadlineFaultIgnoredWithoutDeadline) {
  // The expiry fault only fires when a deadline is actually configured;
  // an unlimited search must be unaffected.
  Estimator est(&catalog_, &pool_);
  ScopedFault expire(Fault::kExpireDeadline);
  ASSERT_TRUE(est.TryEstimateSelectivity(query_).ok());
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->budget_exhausted);
}

TEST_F(BudgetTest, DeadlineNotOvershotByPathologicalLookups) {
  // Regression: the deadline used to be consulted only between memo
  // subproblems, so a pathological candidate fan-out (here: every
  // provider scoring pass injected with a slow lookup) could overshoot
  // deadline_seconds by orders of magnitude. The gates now sit inside
  // candidate enumeration and the provider's scoring loops; the wall
  // clock must land near the deadline — unchecked, this query's
  // thousands of 2ms lookups would run for many seconds.
  EstimationBudget budget;
  budget.deadline_seconds = 0.2;
  Estimator est(&catalog_, &pool_, Ranking::kDiff, budget);
  const auto start = std::chrono::steady_clock::now();
  StatusOr<double> sel = Status::Internal("unset");
  {
    ScopedFault slow(Fault::kSlowAtomicLookup);
    sel = est.TryEstimateSelectivity(query_);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  // 5x headroom over the configured deadline absorbs scheduler jitter and
  // the one in-flight lookup per gate, while still failing loudly if the
  // enumeration loops ever lose their deadline checks.
  EXPECT_LT(elapsed, 5.0 * budget.deadline_seconds);
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->budget_exhausted);
}

TEST_F(BudgetTest, DegradedEstimateStaysCloseToIndependence) {
  // A search whose deadline expired before the first subset must equal the
  // product of the single-predicate base estimates — the documented
  // fallback semantics.
  EstimationBudget expired;
  expired.deadline_seconds = 3600.0;
  Estimator degraded(&catalog_, &pool_, Ranking::kDiff, expired);
  StatusOr<double> sel = Status::Internal("unset");
  {
    ScopedFault expire(Fault::kExpireDeadline);
    sel = degraded.TryEstimateSelectivity(query_);
  }
  ASSERT_TRUE(sel.ok());

  Estimator unconstrained(&catalog_, &pool_);
  double product = 1.0;
  for (int i = 0; i < query_.num_predicates(); ++i) {
    product *= unconstrained.EstimateSelectivity(query_, 1u << i);
  }
  EXPECT_NEAR(*sel, SanitizeSelectivity(product), 1e-9);
}

// ---------------------------------------------------------------------------
// Fault injection through the full stack.

TEST_F(BudgetTest, DroppedSitsDegradeWithoutAborting) {
  Estimator est(&catalog_, &pool_);
  ScopedFault drop(Fault::kDropSits);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(std::isfinite(*sel));
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  // With every SIT (including base histograms) gone, each predicate
  // contributes the neutral 1.0 default.
  const GsStats* stats = est.StatsFor(query_);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->degraded_subproblems + stats->default_fallbacks, 0u);
}

TEST_F(BudgetTest, CorruptHistogramsAreSanitizedToValidRange) {
  Estimator est(&catalog_, &pool_);
  ScopedFault corrupt(Fault::kCorruptHistograms);
  const StatusOr<double> sel = est.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(std::isfinite(*sel));
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
  const StatusOr<double> card = est.TryEstimateCardinality(query_);
  ASSERT_TRUE(card.ok());
  EXPECT_TRUE(std::isfinite(*card));
}

// ---------------------------------------------------------------------------
// Recoverable evaluator entry points.

TEST_F(RobustnessTest, EvaluatorTryCardinalityValidates) {
  const StatusOr<double> good =
      eval_.TryCardinality(query_, query_.all_predicates());
  ASSERT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(*good,
                   eval_.Cardinality(query_, query_.all_predicates()));

  const StatusOr<double> foreign = eval_.TryCardinality(query_, 0b100);
  EXPECT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);

  const Query bad({Predicate::Filter({9, 0}, 1, 5)});
  const StatusOr<double> missing =
      eval_.TryCardinality(bad, bad.all_predicates());
  EXPECT_FALSE(missing.ok());
}

TEST_F(RobustnessTest, EvaluatorTryTrueSelectivityInRange) {
  const StatusOr<double> sel =
      eval_.TryTrueSelectivity(query_, query_.all_predicates());
  ASSERT_TRUE(sel.ok());
  EXPECT_GE(*sel, 0.0);
  EXPECT_LE(*sel, 1.0);
}

TEST_F(RobustnessTest, CatalogTryResolveColumn) {
  const StatusOr<ColumnRef> ok = catalog_.TryResolveColumn("R", "a");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().table, 0);
  EXPECT_EQ(ok.value().column, 0);
  EXPECT_EQ(catalog_.TryResolveColumn("nope", "a").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.TryResolveColumn("R", "nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace condsel
