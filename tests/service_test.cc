// EstimationService unit and integration tests.
//
// Covers, table-driven where the behaviour is a decision table:
//  - retry classification and jittered backoff (deadline exhaustion never
//    retries, non-idempotent requests never retry, jitter stays inside its
//    configured bounds, the stream is deterministic per seed);
//  - token-bucket quotas and bounded-queue admission (every rejection is
//    an explicit outcome, never an unbounded wait);
//  - the hysteretic circuit-breaker ladder;
//  - GsStats aggregation: AddGsStats/DiffGsStats algebra and the
//    GsStatsLedger double-count regression (OverlappingSettlement drives
//    overlapping concurrent Compute()s and asserts exact totals);
//  - snapshot epochs: pinning, refcount-driven retirement, failed swaps;
//  - the service facade end to end: bit-identity with a direct Estimator,
//    fault-driven retries, degradation rungs, quota accounting, and the
//    exactly-once non-retried feedback path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "condsel/api.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/rng.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/service/admission.h"
#include "condsel/service/circuit_breaker.h"
#include "condsel/service/retry.h"
#include "condsel/service/service.h"
#include "condsel/service/service_stats.h"
#include "condsel/service/snapshot.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }

// ---------------------------------------------------------------------------
// Retry classification and backoff.

TEST(RetryTest, RetryableCodeClassification) {
  struct Case {
    StatusCode code;
    bool retryable;
  };
  const Case kCases[] = {
      {StatusCode::kUnavailable, true},
      {StatusCode::kDeadlineExceeded, true},
      {StatusCode::kInvalidArgument, false},
      {StatusCode::kNotFound, false},
      {StatusCode::kFailedPrecondition, false},
      {StatusCode::kResourceExhausted, false},
      {StatusCode::kDataLoss, false},
      {StatusCode::kInternal, false},
      // Retrying into overload amplifies the overload the rejection sheds.
      {StatusCode::kRejectedOverload, false},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(RetryableStatusCode(c.code), c.retryable)
        << StatusCodeName(c.code);
  }
}

TEST(RetryTest, DecideRetryTable) {
  const double kInf = std::numeric_limits<double>::infinity();
  struct Case {
    const char* name;
    StatusCode code;
    int attempt;
    bool idempotent;
    double remaining;
    bool expect_retry;
    const char* expect_reason_substr;
  };
  const Case kCases[] = {
      {"transient retries", StatusCode::kUnavailable, 1, true, kInf, true,
       ""},
      {"deadline with budget left retries", StatusCode::kDeadlineExceeded, 1,
       true, 10.0, true, ""},
      {"attempt limit is hard", StatusCode::kUnavailable, 3, true, kInf,
       false, "attempt limit"},
      {"non-idempotent never retries", StatusCode::kUnavailable, 1, false,
       kInf, false, "non-idempotent"},
      {"terminal code never retries", StatusCode::kInvalidArgument, 1, true,
       kInf, false, ""},
      {"overload never retries", StatusCode::kRejectedOverload, 1, true,
       kInf, false, ""},
      {"exhausted deadline never retries", StatusCode::kUnavailable, 1, true,
       0.0, false, "deadline exhausted"},
      {"deadline smaller than backoff never retries",
       StatusCode::kDeadlineExceeded, 1, true, 1e-9, false,
       "deadline exhausted"},
  };
  const RetryPolicy policy;
  for (const Case& c : kCases) {
    Rng rng(99);
    const RetryDecision d = DecideRetry(policy, c.code, c.attempt,
                                        c.idempotent, c.remaining, &rng);
    EXPECT_EQ(d.retry, c.expect_retry) << c.name;
    if (c.expect_reason_substr[0] != '\0') {
      EXPECT_NE(std::strstr(d.reason, c.expect_reason_substr), nullptr)
          << c.name << ": reason was '" << d.reason << "'";
    }
    if (d.retry) {
      EXPECT_GT(d.backoff_seconds, 0.0) << c.name;
      EXPECT_LT(d.backoff_seconds, c.remaining) << c.name;
    } else {
      EXPECT_EQ(d.backoff_seconds, 0.0) << c.name;
    }
  }
}

TEST(RetryTest, DeadlineExhaustionNeverRetriesAtAnyAttempt) {
  const RetryPolicy policy;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    for (double remaining : {0.0, 1e-12, 1e-6}) {
      Rng rng(7);
      const RetryDecision d =
          DecideRetry(policy, StatusCode::kUnavailable, attempt,
                      /*idempotent=*/true, remaining, &rng);
      EXPECT_FALSE(d.retry) << "attempt " << attempt << " remaining "
                            << remaining;
    }
  }
}

TEST(RetryTest, JitterStaysInsideConfiguredBounds) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1e-3;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 1.0;  // out of the way for attempts 1..5
  policy.jitter_fraction = 0.2;
  Rng rng(12345);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double base = policy.initial_backoff_seconds *
                        std::pow(policy.backoff_multiplier, attempt - 1);
    double lo_seen = 1e9, hi_seen = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const double b = BackoffSeconds(policy, attempt, &rng);
      EXPECT_GE(b, base * (1.0 - policy.jitter_fraction));
      EXPECT_LE(b, base * (1.0 + policy.jitter_fraction));
      lo_seen = std::min(lo_seen, b);
      hi_seen = std::max(hi_seen, b);
    }
    // The jitter actually jitters (not a constant factor).
    EXPECT_GT(hi_seen - lo_seen, base * 0.1) << "attempt " << attempt;
  }
}

TEST(RetryTest, BackoffCapIsHardEvenAfterJitter) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1e-3;
  policy.max_backoff_seconds = 4e-3;
  policy.jitter_fraction = 0.5;
  Rng rng(5);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LE(BackoffSeconds(policy, attempt, &rng),
                policy.max_backoff_seconds);
    }
  }
}

TEST(RetryTest, BackoffStreamDeterministicPerSeed) {
  const RetryPolicy policy;
  Rng a(42), b(42);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(BackoffSeconds(policy, attempt, &a),
              BackoffSeconds(policy, attempt, &b));
  }
}

// ---------------------------------------------------------------------------
// Token bucket and admission control.

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(TokenBucketTest, BurstThenRefillAtRate) {
  TokenBucket bucket(1.0, 2.0);  // 1 token/s, burst 2
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));   // burst spent
  EXPECT_FALSE(bucket.TryAcquire(0.5));   // only half a token back
  EXPECT_TRUE(bucket.TryAcquire(1.6));    // 1.6 tokens accrued
  EXPECT_FALSE(bucket.TryAcquire(1.6));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(10.0, 3.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  // A long idle stretch must not bank more than the burst.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += bucket.TryAcquire(1000.0) ? 1 : 0;
  EXPECT_EQ(admitted, 3);
}

TEST(TokenBucketTest, RefundReturnsTokenCappedAtBurst) {
  TokenBucket bucket(1.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  bucket.Refund();
  EXPECT_TRUE(bucket.TryAcquire(0.0));  // the refunded token is spendable
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  // A spurious extra refund cannot bank tokens past the burst.
  bucket.Refund();
  bucket.Refund();
  bucket.Refund();
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
}

TEST(AdmissionTest, AdmitReleaseTracksInFlight) {
  AdmissionOptions opt;
  opt.max_concurrent = 2;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  EXPECT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());
  EXPECT_EQ(outcome, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.in_flight(), 1);
  admission.Release();
  EXPECT_EQ(admission.in_flight(), 0);
}

TEST(AdmissionTest, DryBucketRejectsWithoutQueueing) {
  AdmissionOptions opt;
  opt.tenant_rate_per_second = 1.0;
  opt.tenant_burst = 1.0;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  EXPECT_TRUE(admission.Admit("a", 0.0, 0.0, &outcome).ok());
  const Status second = admission.Admit("a", 0.0, 0.0, &outcome);
  EXPECT_EQ(second.code(), StatusCode::kRejectedOverload);
  EXPECT_EQ(outcome, AdmissionOutcome::kQuota);
  // Quotas are per tenant: another tenant still has its burst.
  EXPECT_TRUE(admission.Admit("b", 0.0, 0.0, &outcome).ok());
}

TEST(AdmissionTest, FullQueueShedsImmediately) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.queue_limit = 0;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  ASSERT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());
  const Status shed = admission.Admit("t", 0.0, 10.0, &outcome);
  EXPECT_EQ(shed.code(), StatusCode::kRejectedOverload);
  EXPECT_EQ(outcome, AdmissionOutcome::kQueueFull);
  admission.Release();
}

TEST(AdmissionTest, QueuedRequestTimesOutAsDeadline) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.queue_limit = 4;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  ASSERT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());
  const Status timed_out = admission.Admit("t", 0.0, 0.001, &outcome);
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome, AdmissionOutcome::kTimeout);
  admission.Release();
}

TEST(AdmissionTest, ShedAndTimedOutRequestsRefundQuota) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.queue_limit = 0;
  opt.tenant_rate_per_second = 1e-9;  // negligible refill
  opt.tenant_burst = 2.0;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  ASSERT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());  // 1 token left
  // Every shed request refunds its token: the rejection stays kQueueFull
  // forever instead of decaying into kQuota once the burst is burned on
  // requests that received no service.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(admission.Admit("t", 0.0, 0.0, &outcome).ok());
    EXPECT_EQ(outcome, AdmissionOutcome::kQueueFull) << "shed " << i;
  }
  admission.Release();
  ASSERT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());  // 0 tokens left

  // The same holds for requests that queue and then time out.
  AdmissionOptions timed = opt;
  timed.queue_limit = 4;
  AdmissionController timed_admission(timed);
  ASSERT_TRUE(timed_admission.Admit("t", 0.0, 0.0, &outcome).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(timed_admission.Admit("t", 0.0, 0.0, &outcome).ok());
    EXPECT_EQ(outcome, AdmissionOutcome::kTimeout) << "timeout " << i;
  }
  timed_admission.Release();
}

TEST(AdmissionTest, QueuedRequestGetsFreedSlot) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.queue_limit = 4;
  AdmissionController admission(opt);
  AdmissionOutcome outcome;
  ASSERT_TRUE(admission.Admit("t", 0.0, 0.0, &outcome).ok());
  Status queued = Status::Ok();
  AdmissionOutcome queued_outcome = AdmissionOutcome::kTimeout;
  std::thread waiter([&]() {
    queued = admission.Admit("t", 0.0, 30.0, &queued_outcome);
  });
  while (admission.waiting() == 0) std::this_thread::yield();
  admission.Release();
  waiter.join();
  EXPECT_TRUE(queued.ok());
  EXPECT_EQ(queued_outcome, AdmissionOutcome::kAdmitted);
  admission.Release();
  EXPECT_EQ(admission.in_flight(), 0);
}

// ---------------------------------------------------------------------------
// Circuit-breaker ladder.

TEST(BreakerTest, StepsDownOneRungPerFailureStreak) {
  BreakerOptions opt;
  opt.open_after = 3;
  CircuitBreakerLadder ladder(opt);
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kFull);
  ladder.RecordFailure("t");
  ladder.RecordFailure("t");
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kFull);  // streak not complete
  EXPECT_EQ(ladder.RecordFailure("t"), ServiceMode::kCapped);
  for (int i = 0; i < 3; ++i) ladder.RecordFailure("t");
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kIndependence);
  // The bottom rung holds.
  for (int i = 0; i < 10; ++i) ladder.RecordFailure("t");
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kIndependence);
  EXPECT_EQ(ladder.step_downs(), 2u);
}

TEST(BreakerTest, SuccessResetsTheFailureStreak) {
  BreakerOptions opt;
  opt.open_after = 2;
  CircuitBreakerLadder ladder(opt);
  ladder.RecordFailure("t");
  ladder.RecordSuccess("t");
  ladder.RecordFailure("t");
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kFull);
  EXPECT_EQ(ladder.step_downs(), 0u);
}

TEST(BreakerTest, RecoversOneRungPerSuccessStreak) {
  BreakerOptions opt;
  opt.open_after = 1;
  opt.close_after = 2;
  CircuitBreakerLadder ladder(opt);
  ladder.RecordFailure("t");
  ladder.RecordFailure("t");
  ASSERT_EQ(ladder.ModeFor("t"), ServiceMode::kIndependence);
  ladder.RecordSuccess("t");
  EXPECT_EQ(ladder.ModeFor("t"), ServiceMode::kIndependence);  // probing
  EXPECT_EQ(ladder.RecordSuccess("t"), ServiceMode::kCapped);
  ladder.RecordSuccess("t");
  EXPECT_EQ(ladder.RecordSuccess("t"), ServiceMode::kFull);
  EXPECT_EQ(ladder.step_ups(), 2u);
  EXPECT_EQ(ladder.step_downs(), 2u);
}

TEST(BreakerTest, TenantsAreIndependent) {
  BreakerOptions opt;
  opt.open_after = 1;
  CircuitBreakerLadder ladder(opt);
  ladder.RecordFailure("noisy");
  EXPECT_EQ(ladder.ModeFor("noisy"), ServiceMode::kCapped);
  EXPECT_EQ(ladder.ModeFor("quiet"), ServiceMode::kFull);
}

TEST(BreakerTest, ModeNamesAreStable) {
  EXPECT_STREQ(ServiceModeName(ServiceMode::kFull), "full");
  EXPECT_STREQ(ServiceModeName(ServiceMode::kCapped), "capped");
  EXPECT_STREQ(ServiceModeName(ServiceMode::kIndependence), "independence");
}

// ---------------------------------------------------------------------------
// GsStats aggregation algebra and the ledger double-count regression.

GsStats MakeStats(uint64_t subproblems, uint64_t atomics, bool exhausted) {
  GsStats s;
  s.subproblems = subproblems;
  s.memo_hits = subproblems * 2;
  s.atomic_considered = atomics;
  s.analysis_seconds = 0.25 * static_cast<double>(subproblems);
  s.budget_exhausted = exhausted;
  s.max_level_width = subproblems;
  return s;
}

TEST(GsStatsMergeTest, AddAccumulatesAndOrsAndMaxes) {
  GsStats total = MakeStats(3, 10, false);
  total.level_stats.push_back({1, 4, 0, 0, 4});
  GsStats delta = MakeStats(5, 2, true);
  delta.level_stats.push_back({2, 6, 1, 2, 3});
  AddGsStats(delta, &total);
  EXPECT_EQ(total.subproblems, 8u);
  EXPECT_EQ(total.atomic_considered, 12u);
  EXPECT_TRUE(total.budget_exhausted);
  EXPECT_EQ(total.max_level_width, 5u);  // max, not sum
  ASSERT_EQ(total.level_stats.size(), 2u);  // batches append
  EXPECT_EQ(total.level_stats[1].level, 2);
}

TEST(GsStatsMergeTest, DiffIsTheGrowthSincePrev) {
  const GsStats prev = MakeStats(3, 10, false);
  GsStats cumulative = MakeStats(8, 14, true);
  const GsStats delta = DiffGsStats(cumulative, prev);
  EXPECT_EQ(delta.subproblems, 5u);
  EXPECT_EQ(delta.atomic_considered, 4u);
  EXPECT_TRUE(delta.budget_exhausted);  // newly exhausted since prev
  // Already-exhausted sessions don't re-contribute the flag.
  const GsStats again = DiffGsStats(cumulative, cumulative);
  EXPECT_FALSE(again.budget_exhausted);
  EXPECT_EQ(again.subproblems, 0u);
}

TEST(GsStatsMergeTest, DiffSaturatesInsteadOfWrapping) {
  const GsStats prev = MakeStats(9, 20, false);
  const GsStats cumulative = MakeStats(3, 5, false);  // misordered pair
  const GsStats delta = DiffGsStats(cumulative, prev);
  EXPECT_EQ(delta.subproblems, 0u);
  EXPECT_EQ(delta.atomic_considered, 0u);
}

// The regression the ledger exists for: two sessions Compute()ing
// concurrently, each settling its *cumulative* stats after every call.
// A naive aggregator that re-adds each snapshot double-counts every
// earlier call; the ledger's total must equal the final session stats
// exactly, from any interleaving.
TEST(GsStatsMergeTest, OverlappingSettlement) {
  const Catalog catalog = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  SitBuilder builder(&eval, {HistogramType::kMaxDiff, 64});
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Join(Sb(), Tz())});
  const SitPool pool = GenerateSitPool({q}, 2, builder);

  GsStatsLedger ledger;
  GsStats naive_total;
  std::mutex naive_mu;
  std::vector<GsStats> finals(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {
      DiffError diff;
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, nullptr);
      for (PredSet p : SubPlanFamily(q)) {
        gs.Compute(p);
        // Settle the growing cumulative snapshot after *every* call,
        // overlapping with the other session's settlements.
        ledger.Settle(static_cast<uint64_t>(t), gs.stats());
        const std::lock_guard<std::mutex> lock(naive_mu);
        AddGsStats(gs.stats(), &naive_total);  // the buggy aggregation
      }
      finals[t] = gs.stats();
    });
  }
  for (std::thread& th : threads) th.join();

  GsStats expected;
  AddGsStats(finals[0], &expected);
  AddGsStats(finals[1], &expected);
  const GsStats total = ledger.total();
  EXPECT_EQ(total.subproblems, expected.subproblems);
  EXPECT_EQ(total.memo_hits, expected.memo_hits);
  EXPECT_EQ(total.atomic_considered, expected.atomic_considered);
  EXPECT_EQ(total.degraded_subproblems, expected.degraded_subproblems);
  EXPECT_EQ(total.default_fallbacks, expected.default_fallbacks);
  EXPECT_EQ(total.budget_exhausted, expected.budget_exhausted);
  EXPECT_NEAR(total.analysis_seconds, expected.analysis_seconds, 1e-9);
  EXPECT_NEAR(total.histogram_seconds, expected.histogram_seconds, 1e-9);
  // And the naive cumulative re-add really does double-count — the trap
  // is live, not hypothetical.
  EXPECT_GT(naive_total.subproblems, expected.subproblems);
}

TEST(GsStatsMergeTest, LedgerForgetKeepsContributions) {
  GsStatsLedger ledger;
  ledger.Settle(1, MakeStats(4, 8, false));
  ledger.Forget(1);
  EXPECT_EQ(ledger.total().subproblems, 4u);
  // A new session reusing the id starts from a clean baseline.
  ledger.Settle(1, MakeStats(2, 3, false));
  EXPECT_EQ(ledger.total().subproblems, 6u);
}

// ---------------------------------------------------------------------------
// Latency histogram.

TEST(LatencyRecorderTest, EmptyReadsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.QuantileSeconds(0.5), 0.0);
}

TEST(LatencyRecorderTest, QuantilesLandInTheRightBucket) {
  LatencyRecorder rec;
  for (int i = 0; i < 99; ++i) rec.Record(1e-3);
  rec.Record(0.1);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.total_seconds(), 0.199, 1e-9);
  // 1ms lives in bucket [512us, 1024us) -> upper edge 1.024ms.
  EXPECT_DOUBLE_EQ(rec.QuantileSeconds(0.5), 1024e-6);
  // The p99 sample is the 100ms outlier: bucket upper edge 2^17 us.
  EXPECT_DOUBLE_EQ(rec.QuantileSeconds(0.99), std::ldexp(1.0, 17) * 1e-6);
}

// ---------------------------------------------------------------------------
// Snapshot epochs.

TEST(SnapshotTest, AcquireBeforeFirstPublishIsNull) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.Acquire(), nullptr);
  EXPECT_EQ(publisher.current_epoch(), 0u);
}

TEST(SnapshotTest, HandlesPinEpochsAndRetireByRefcount) {
  const Catalog catalog = test::MakeTinyCatalog();
  SnapshotPublisher publisher;
  const StatusOr<uint64_t> first = publisher.Publish(catalog, SitPool{});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  std::shared_ptr<const Snapshot> pinned = publisher.Acquire();
  ASSERT_NE(pinned, nullptr);
  EXPECT_TRUE(pinned->Coherent());

  const StatusOr<uint64_t> second = publisher.Publish(catalog, SitPool{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2u);
  // The in-flight handle still reads epoch 1; new acquires see epoch 2.
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(publisher.Acquire()->epoch(), 2u);
  EXPECT_EQ(publisher.live_epochs(), 2u);
  pinned.reset();  // the last holder retires epoch 1
  EXPECT_EQ(publisher.live_epochs(), 1u);
  EXPECT_EQ(publisher.published(), 2u);
}

TEST(SnapshotTest, FailedSwapKeepsThePreviousEpoch) {
  const Catalog catalog = test::MakeTinyCatalog();
  SnapshotPublisher publisher;
  ASSERT_TRUE(publisher.Publish(catalog, SitPool{}).ok());
  {
    const ScopedFault fault(Fault::kFailSnapshotSwap);
    const StatusOr<uint64_t> swap = publisher.Publish(catalog, SitPool{});
    EXPECT_FALSE(swap.ok());
    EXPECT_EQ(swap.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(publisher.current_epoch(), 1u);
  EXPECT_EQ(publisher.failed_swaps(), 1u);
  EXPECT_EQ(publisher.published(), 1u);
  // Recovery: the next refresh publishes normally.
  ASSERT_TRUE(publisher.Publish(catalog, SitPool{}).ok());
  EXPECT_EQ(publisher.current_epoch(), 2u);
}

// ---------------------------------------------------------------------------
// EstimationService end to end.

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                Predicate::Join(Sb(), Tz())}),
        pool_(GenerateSitPool({query_}, 2, builder_)) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
};

TEST_F(ServiceTest, SubmitBeforeAnyRefreshFailsPrecondition) {
  EstimationService service;
  const StatusOr<ServiceEstimate> r = service.Submit("t", query_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ServiceTest, SubmitMatchesDirectEstimatorBitForBit) {
  EstimationService service;
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  const StatusOr<ServiceEstimate> r = service.Submit("t", query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  Estimator direct(&catalog_, &pool_, Ranking::kDiff);
  const StatusOr<double> sel = direct.TryEstimateSelectivity(query_);
  const StatusOr<double> card = direct.TryEstimateCardinality(query_);
  ASSERT_TRUE(sel.ok() && card.ok());
  EXPECT_EQ(r.value().selectivity, sel.value());  // bit-identical
  EXPECT_EQ(r.value().cardinality, card.value());
  EXPECT_EQ(r.value().epoch, 1u);
  EXPECT_EQ(r.value().mode, ServiceMode::kFull);
  EXPECT_EQ(r.value().attempts, 1);
  EXPECT_FALSE(r.value().degraded);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.mode_submissions[0], 1u);
  EXPECT_EQ(stats.latency_count, 1u);
  EXPECT_GT(stats.search.subproblems, 0u);
}

TEST_F(ServiceTest, TransientFaultRetriesThenReportsUnavailable) {
  ServiceOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_seconds = 1e-5;  // fast test
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  {
    const ScopedFault fault(Fault::kThrowAtomicLookup);
    const StatusOr<ServiceEstimate> r = service.Submit("t", query_);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.transient_faults, 3u);  // every attempt failed retryably
  EXPECT_EQ(stats.retries, 2u);           // max_attempts - 1
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(ServiceTest, ExpiredDeadlineRefusesToAttempt) {
  EstimationService service;
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  SubmitOptions submit;
  submit.deadline_seconds = 1e-12;  // spent before admission completes
  const StatusOr<ServiceEstimate> r = service.Submit("t", query_, submit);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.no_retry_deadline, 1u);
  // No attempt ran: an expired caller must never get an unclocked search
  // (deadline_seconds == 0 would mean "no deadline" to the budget).
  EXPECT_EQ(stats.search.subproblems, 0u);
  EXPECT_EQ(stats.search.atomic_considered, 0u);
}

TEST(ServiceExceptionTest, OnlyTransientFaultIsRetryable) {
  const Status transient = ClassifyAttemptException(
      "estimation attempt", TransientFault("injected: lookup failed"));
  EXPECT_EQ(transient.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(RetryableStatusCode(transient.code()));
  // Anything else escaping the library is a deterministic bug: terminal
  // INTERNAL, never retried as if it could pass on the next try.
  const Status bug = ClassifyAttemptException(
      "estimation attempt", std::logic_error("broken invariant"));
  EXPECT_EQ(bug.code(), StatusCode::kInternal);
  EXPECT_FALSE(RetryableStatusCode(bug.code()));
}

TEST_F(ServiceTest, BreakerStepsDownThenRecovers) {
  ServiceOptions options;
  options.retry.max_attempts = 1;  // one failed Submit == one breaker strike
  options.breaker.open_after = 1;
  options.breaker.close_after = 2;
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  {
    const ScopedFault fault(Fault::kThrowAtomicLookup);
    StatusIgnored(service.Submit("t", query_));  // strike 1: -> kCapped
  }
  StatusOr<ServiceEstimate> capped = service.Submit("t", query_);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value().mode, ServiceMode::kCapped);
  // Two successes at the degraded rung close the breaker again.
  ASSERT_TRUE(service.Submit("t", query_).ok());
  const StatusOr<ServiceEstimate> full = service.Submit("t", query_);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().mode, ServiceMode::kFull);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.step_downs, 1u);
  EXPECT_EQ(stats.step_ups, 1u);
  EXPECT_EQ(stats.mode_submissions[0], 2u);  // the failed one + the last
  EXPECT_EQ(stats.mode_submissions[1], 2u);
}

TEST_F(ServiceTest, IndependenceRungAlwaysAnswers) {
  ServiceOptions options;
  options.retry.max_attempts = 1;
  options.breaker.open_after = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  {
    const ScopedFault fault(Fault::kThrowAtomicLookup);
    StatusIgnored(service.Submit("t", query_));  // -> kCapped
    StatusIgnored(service.Submit("t", query_));  // -> kIndependence
  }
  const StatusOr<ServiceEstimate> r = service.Submit("t", query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().mode, ServiceMode::kIndependence);
  EXPECT_TRUE(r.value().degraded);  // the bottom rung is the fallback
  EXPECT_GT(r.value().selectivity, 0.0);
  EXPECT_LE(r.value().selectivity, 1.0);
}

TEST_F(ServiceTest, TenantQuotaRejectionIsCounted) {
  ServiceOptions options;
  options.admission.tenant_rate_per_second = 1e-9;  // one-shot burst of 1
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  ASSERT_TRUE(service.Submit("t", query_).ok());
  const StatusOr<ServiceEstimate> shed = service.Submit("t", query_);
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kRejectedOverload);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
}

TEST_F(ServiceTest, DeadlineDegradedFullEstimateRetriesThenReturnsFloor) {
  ServiceOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_seconds = 1e-5;
  EstimationService service(options);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  const ScopedFault fault(Fault::kExpireDeadline);  // every attempt degrades
  SubmitOptions submit;
  submit.deadline_seconds = 30.0;  // plenty of caller budget for retries
  const StatusOr<ServiceEstimate> r = service.Submit("t", query_, submit);
  // Retries probed for a clean estimate, then the degraded floor shipped.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(r.value().attempts, 3);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ServiceTest, RefreshRotatesEpochsUnderSubmits) {
  EstimationService service;
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  const StatusOr<ServiceEstimate> before = service.Submit("t", query_);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().epoch, 1u);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  const StatusOr<ServiceEstimate> after = service.Submit("t", query_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().epoch, 2u);
  // Identical statistics under a new epoch: identical bits.
  EXPECT_EQ(before.value().selectivity, after.value().selectivity);
  EXPECT_EQ(service.Stats().epochs_published, 2u);
}

TEST_F(ServiceTest, FeedbackAppliesOnceAndNeverRetries) {
  EstimationService service;
  EXPECT_EQ(service.ObserveFeedback("t", query_).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());

  EXPECT_DOUBLE_EQ(service.FeedbackAdjustmentFor(Ra()), 1.0);
  ASSERT_TRUE(service.ObserveFeedback("t", query_).ok());
  const double adjustment = service.FeedbackAdjustmentFor(Ra());
  EXPECT_NE(adjustment, 1.0);  // the observation trained the column

  // A transient fault on the non-idempotent path surfaces, is counted,
  // and is never retried.
  {
    const ScopedFault fault(Fault::kThrowAtomicLookup);
    const Status s = service.ObserveFeedback("t", query_);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.feedback_updates, 1u);
  EXPECT_EQ(stats.feedback_failures, 1u);
  EXPECT_EQ(stats.no_retry_non_idempotent, 1u);

  // Feedback state is per-epoch: a refresh starts the next epoch clean.
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  EXPECT_DOUBLE_EQ(service.FeedbackAdjustmentFor(Ra()), 1.0);
}

TEST_F(ServiceTest, MalformedQueryIsTerminal) {
  EstimationService service;
  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  // A filter on a column outside the catalog.
  const Query bad({Predicate::Filter({7, 3}, 1, 5)});
  const StatusOr<ServiceEstimate> r = service.Submit("t", bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.retries, 0u);  // deterministic failures never retry
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ServiceTest, PrewarmWarmsCachesAndSwallowsFailures) {
  EstimationService service;
  // Before any Refresh there is no epoch to warm against: every submit
  // fails precondition and Prewarm reports zero warmed.
  EXPECT_EQ(service.Prewarm("t", {query_}), 0u);

  ASSERT_TRUE(service.Refresh(catalog_, pool_).ok());
  const Query bad({Predicate::Filter({7, 3}, 1, 5)});
  // One warmable query, one malformed: the failure is swallowed, not
  // propagated, and the good query still warms.
  EXPECT_EQ(service.Prewarm("t", {query_, bad}), 1u);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 3u);  // 1 pre-refresh + 2 post-refresh
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 2u);

  // The warmed epoch serves real submits afterwards.
  EXPECT_TRUE(service.Submit("t", query_).ok());
}

// ---------------------------------------------------------------------------
// Delta maintenance through the service: ApplyDelta as a delta-refreshed
// snapshot epoch.

class ServiceDeltaTest : public ::testing::Test {
 protected:
  // F(a, d_id) in three sealed 20-row parts joined to a 10-row D(pk, c);
  // same data shape as part_stats_test so the maintainer exercises real
  // multi-part merges.
  ServiceDeltaTest()
      : query_({Predicate::Join({0, 1}, {1, 0}),
                Predicate::Filter({0, 0}, 10, 60)}),
        maintainer_(MakeCatalog(&catalog_),
                    {query_}, 1, {HistogramType::kMaxDiff, 64}) {}

  static Catalog* MakeCatalog(Catalog* catalog) {
    Table fact = test::MakeTable("F", {"a", "d_id"}, {});
    int row = 0;
    for (int p = 0; p < 3; ++p) {
      for (int r = 0; r < 20; ++r, ++row) {
        fact.AppendRow({(row * 7) % 100, row % 10});
      }
      fact.SealTail();
    }
    catalog->AddTable(std::move(fact));
    std::vector<std::vector<int64_t>> dim_rows;
    for (int64_t i = 0; i < 10; ++i) dim_rows.push_back({i, i * 3});
    Table dim = test::MakeTable("D", {"pk", "c"}, dim_rows, {true, false});
    dim.SealTail();
    catalog->AddTable(std::move(dim));
    return catalog;
  }

  Catalog catalog_;
  Query query_;
  PartStatsMaintainer maintainer_;
};

TEST_F(ServiceDeltaTest, EnableThenApplyDeltaPublishEpochs) {
  EstimationService service;
  const StatusOr<uint64_t> enabled =
      service.EnableDeltaMaintenance(&maintainer_);
  ASSERT_TRUE(enabled.ok()) << enabled.status().ToString();
  EXPECT_EQ(enabled.value(), 1u);
  EXPECT_EQ(service.current_epoch(), 1u);

  // The enable epoch serves estimates built from the merged pool.
  const StatusOr<ServiceEstimate> before = service.Submit("t", query_);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().epoch, 1u);

  DeltaBatch batch;
  batch.table = 0;
  batch.insert_rows.assign(40, {0, 0});  // outside the filter range
  const StatusOr<DeltaReport> report = service.ApplyDelta(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().rebuilt_parts.size(), 1u);
  EXPECT_EQ(service.current_epoch(), 2u);

  // New submits see the refreshed statistics: the inserted rows dilute
  // the filter, so the estimate must move.
  const StatusOr<ServiceEstimate> after = service.Submit("t", query_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().epoch, 2u);
  EXPECT_NE(after.value().selectivity, before.value().selectivity);

  // And it matches a direct estimator over the maintainer's merged pool
  // bit for bit.
  SitPool pool = *maintainer_.MergedPool().value();
  Estimator direct(&maintainer_.catalog(), &pool, Ranking::kDiff);
  const StatusOr<double> sel = direct.TryEstimateSelectivity(query_);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(after.value().selectivity, sel.value());
}

TEST_F(ServiceDeltaTest, ApplyDeltaRequiresEnable) {
  EstimationService service;
  DeltaBatch batch;
  batch.table = 0;
  batch.insert_rows = {{1, 1}};
  const StatusOr<DeltaReport> r = service.ApplyDelta(batch);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.current_epoch(), 0u);

  EXPECT_EQ(service.EnableDeltaMaintenance(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServiceDeltaTest, CorruptStatsAreNeverPublished) {
  EstimationService service;
  ASSERT_TRUE(service.EnableDeltaMaintenance(&maintainer_).ok());
  ASSERT_EQ(service.current_epoch(), 1u);

  DeltaBatch batch;
  batch.table = 0;
  batch.insert_rows = {{5, 5}};
  {
    const ScopedFault fault(Fault::kCorruptPartStats);
    const StatusOr<DeltaReport> r = service.ApplyDelta(batch);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
  // The poisoned pool never became an epoch; the enable epoch still
  // serves.
  EXPECT_EQ(service.current_epoch(), 1u);
  EXPECT_TRUE(service.Submit("t", query_).ok());

  // With the fault cleared the same batch has already been applied to
  // the catalog (merge validation failed *after* the data change), so a
  // follow-up empty-ish delta republished cleanly.
  DeltaBatch retry;
  retry.table = 0;
  retry.insert_rows = {{6, 6}};
  const StatusOr<DeltaReport> r = service.ApplyDelta(retry);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(service.current_epoch(), 2u);
}

}  // namespace
}  // namespace condsel
