// Parameterized end-to-end sweeps: the full pipeline (generate DB,
// generate workload, build pools, estimate with every technique) must
// uphold its invariants across join counts, pool sizes, skew levels, and
// error functions.

#include <gtest/gtest.h>

#include <cmath>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/metrics.h"
#include "condsel/harness/runner.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

struct SweepParam {
  int num_joins;
  int pool_j;
  double zipf_theta;
};

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void Build() {
    SnowflakeOptions opt;
    opt.scale = 0.002;
    opt.zipf_theta = GetParam().zipf_theta;
    catalog_ = std::make_unique<Catalog>(BuildSnowflake(opt));
    eval_ = std::make_unique<Evaluator>(catalog_.get(), &cache_);
    WorkloadOptions wopt;
    wopt.num_queries = 4;
    wopt.num_joins = GetParam().num_joins;
    workload_ = GenerateWorkload(*catalog_, eval_.get(), wopt);
    SitBuilder builder(eval_.get(), SitBuildOptions{});
    pool_ = GenerateSitPool(workload_, GetParam().pool_j, builder);
  }

  CardinalityCache cache_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Evaluator> eval_;
  std::vector<Query> workload_;
  SitPool pool_;
};

TEST_P(PipelineSweepTest, EstimatesAreProbabilitiesEverywhere) {
  Build();
  NIndError n_ind;
  DiffError diff;
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    for (const ErrorFunction* fn :
         std::initializer_list<const ErrorFunction*>{&n_ind, &diff}) {
      AtomicSelectivityProvider fa(&matcher, fn);
      GetSelectivity gs(&q, &fa);
      for (PredSet plan : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(plan);
        ASSERT_GE(e.selectivity, 0.0) << fn->name();
        ASSERT_LE(e.selectivity, 1.0 + 1e-9) << fn->name();
        ASSERT_GE(e.error, 0.0) << fn->name();
        ASSERT_LT(e.error, kInfiniteError) << fn->name();
      }
    }
  }
}

TEST_P(PipelineSweepTest, MemoizedSubPlansAgreeWithFreshComputation) {
  Build();
  DiffError diff;
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    // One DP answering everything vs a fresh DP per sub-plan.
    AtomicSelectivityProvider fa_all(&matcher, &diff);
    GetSelectivity gs_all(&q, &fa_all);
    gs_all.Compute(q.all_predicates());
    for (PredSet plan : SubPlanFamily(q)) {
      AtomicSelectivityProvider fa_one(&matcher, &diff);
      GetSelectivity gs_one(&q, &fa_one);
      ASSERT_NEAR(gs_all.Compute(plan).selectivity,
                  gs_one.Compute(plan).selectivity, 1e-12);
      ASSERT_NEAR(gs_all.Compute(plan).error, gs_one.Compute(plan).error,
                  1e-12);
    }
  }
}

TEST_P(PipelineSweepTest, DpNeverWorseThanExhaustiveOnSmallQueries) {
  if (GetParam().num_joins > 3) GTEST_SKIP() << "exhaustive too costly";
  Build();
  DiffError diff;
  for (const Query& q : workload_) {
    SitMatcher matcher(&pool_);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff);
    GetSelectivity gs(&q, &fa);
    const double dp = gs.Compute(q.all_predicates()).error;
    const double pruned =
        ExhaustiveBest(q, q.all_predicates(), &fa, true).error;
    ASSERT_NEAR(dp, pruned, 1e-9);
  }
}

TEST_P(PipelineSweepTest, TechniquesOrderSanely) {
  Build();
  Runner runner(catalog_.get(), eval_.get());
  const double no_sit =
      runner.Run(workload_, pool_, Technique::kNoSit).avg_abs_error;
  const double gs_diff =
      runner.Run(workload_, pool_, Technique::kGsDiff).avg_abs_error;
  if (GetParam().pool_j == 0) {
    // Identical information: identical estimates.
    EXPECT_NEAR(gs_diff, no_sit, 1e-6);
  } else if (GetParam().zipf_theta >= 1.0) {
    // On skewed data — the paper's setting — SITs must not hurt on
    // average (small slack for histogram noise).
    EXPECT_LE(gs_diff, no_sit * 1.05 + 1e-9);
  } else {
    // On near-uniform data at tiny scale there is little dependence to
    // exploit; SITs may add histogram noise. Sanity-bound only.
    EXPECT_LE(gs_diff, no_sit * 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweepTest,
    ::testing::Values(SweepParam{2, 0, 1.0}, SweepParam{2, 1, 1.0},
                      SweepParam{2, 2, 1.0}, SweepParam{3, 1, 0.5},
                      SweepParam{3, 2, 1.0}, SweepParam{3, 3, 1.5},
                      SweepParam{4, 2, 1.0}, SweepParam{5, 2, 1.0},
                      SweepParam{5, 4, 1.5}),
    // `pinfo`, not gtest's customary `info`: the INSTANTIATE macro
    // expands the lambda inside a function whose parameter is already
    // named `info`, and -Wshadow rejects the collision.
    [](const ::testing::TestParamInfo<SweepParam>& pinfo) {
      return "J" + std::to_string(pinfo.param.num_joins) + "_pool" +
             std::to_string(pinfo.param.pool_j) + "_theta" +
             std::to_string(static_cast<int>(pinfo.param.zipf_theta * 10));
    });

}  // namespace
}  // namespace condsel
