// Shared helpers for the test suites: a tiny hand-built database and a
// brute-force (nested-loop, cross-product) reference evaluator for
// validating the hash-join executor and selectivity definitions.

#pragma once

#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/query/query.h"
#include "condsel/storage/column.h"

namespace condsel {
namespace test {

// Builds a table from row-major data.
inline Table MakeTable(const std::string& name,
                       const std::vector<std::string>& columns,
                       const std::vector<std::vector<int64_t>>& rows,
                       const std::vector<bool>& is_key = {}) {
  TableSchema schema;
  schema.name = name;
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnSchema cs;
    cs.name = columns[c];
    cs.is_key = c < is_key.size() ? is_key[c] : false;
    cs.min_value = 0;
    cs.max_value = 1000;
    schema.columns.push_back(cs);
  }
  Table t(schema);
  for (const auto& row : rows) t.AppendRow(row);
  return t;
}

// A tiny deterministic 3-table database:
//   R(a, x): values chosen so filters and joins have hand-computable
//            cardinalities;
//   S(y, b): includes one NULL join value;
//   T(z, c).
// Join graph: R.x = S.y, S.b = T.z (via predicates built by the tests).
inline Catalog MakeTinyCatalog() {
  Catalog catalog;
  catalog.AddTable(MakeTable("R", {"a", "x"},
                             {{1, 10},
                              {2, 10},
                              {3, 20},
                              {4, 20},
                              {5, 20},
                              {6, 30},
                              {7, 40},
                              {8, 40},
                              {9, 50},
                              {10, 60}}));
  catalog.AddTable(MakeTable("S", {"y", "b"},
                             {{10, 100},
                              {10, 100},
                              {20, 200},
                              {30, 200},
                              {40, 300},
                              {kNullValue, 300},
                              {70, 400},
                              {80, 400}}));
  catalog.AddTable(MakeTable("T", {"z", "c"},
                             {{100, 1},
                              {100, 2},
                              {200, 3},
                              {300, 4},
                              {500, 5},
                              {600, 6}}));
  return catalog;
}

// Brute-force |sigma_P(tables(P)^x)| by nested loops. Only suitable for
// small tables.
inline double BruteForceCardinality(const Catalog& catalog, const Query& q,
                                    PredSet subset) {
  if (subset == 0) return 1.0;
  const std::vector<int> tables = SetElements(q.TablesOfSubset(subset));
  std::vector<size_t> idx(tables.size(), 0);
  double count = 0.0;
  while (true) {
    bool ok = true;
    for (int i : SetElements(subset)) {
      const Predicate& p = q.predicate(i);
      auto value = [&](ColumnRef col) {
        for (size_t k = 0; k < tables.size(); ++k) {
          if (tables[k] == col.table) {
            return catalog.table(col.table).value(idx[k], col.column);
          }
        }
        return kNullValue;
      };
      if (p.is_filter()) {
        const int64_t v = value(p.column());
        if (IsNull(v) || v < p.lo() || v > p.hi()) {
          ok = false;
          break;
        }
      } else {
        const int64_t l = value(p.left());
        const int64_t r = value(p.right());
        if (IsNull(l) || IsNull(r) || l != r) {
          ok = false;
          break;
        }
      }
    }
    if (ok) count += 1.0;
    // Advance the odometer.
    size_t k = 0;
    for (; k < tables.size(); ++k) {
      if (++idx[k] < catalog.table(tables[k]).num_rows()) break;
      idx[k] = 0;
    }
    if (k == tables.size()) break;
  }
  return count;
}

}  // namespace test
}  // namespace condsel

