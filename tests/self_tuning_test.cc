// Tests for the STHoles-style self-tuning histogram.

#include <gtest/gtest.h>

#include <cmath>

#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/selftuning/self_tuning_histogram.h"

namespace condsel {
namespace {

double ExactFraction(const std::vector<int64_t>& values, int64_t lo,
                     int64_t hi) {
  size_t c = 0;
  for (int64_t v : values) c += (v >= lo && v <= hi);
  return static_cast<double>(c) / static_cast<double>(values.size());
}

TEST(SelfTuningTest, StartsUniform) {
  SelfTuningHistogram h(0, 99, 16);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_NEAR(h.RangeSelectivity(0, 99), 1.0, 1e-12);
  EXPECT_NEAR(h.RangeSelectivity(0, 49), 0.5, 1e-12);
}

TEST(SelfTuningTest, SingleObservationIsRemembered) {
  SelfTuningHistogram h(0, 99, 16);
  h.Observe(10, 19, 0.6);
  EXPECT_NEAR(h.RangeSelectivity(10, 19), 0.6, 1e-9);
  // Mass conservation: the rest holds the remaining 0.4.
  EXPECT_NEAR(h.total_mass(), 1.0, 1e-9);
  EXPECT_NEAR(h.RangeSelectivity(0, 9) + h.RangeSelectivity(20, 99), 0.4,
              1e-9);
}

TEST(SelfTuningTest, RepeatedFeedbackConverges) {
  // Zipfian data; feed the histogram a stream of range observations.
  Rng rng(3);
  ZipfSampler z(200, 1.1);
  std::vector<int64_t> values(20000);
  for (auto& v : values) v = z.Next(rng);

  SelfTuningHistogram h(0, 199, 24);
  for (int round = 0; round < 200; ++round) {
    const int64_t lo = rng.NextInRange(0, 180);
    const int64_t hi = lo + rng.NextInRange(2, 19);
    h.Observe(lo, hi, ExactFraction(values, lo, hi));
  }
  // After training, held-out ranges should be reasonably estimated.
  double err = 0.0;
  int n = 0;
  for (int64_t lo = 0; lo <= 180; lo += 20) {
    const int64_t hi = lo + 19;
    err += std::abs(h.RangeSelectivity(lo, hi) -
                    ExactFraction(values, lo, hi));
    ++n;
  }
  EXPECT_LT(err / n, 0.04);
  // Far better than the uninformed uniform assumption.
  double uniform_err = 0.0;
  for (int64_t lo = 0; lo <= 180; lo += 20) {
    uniform_err += std::abs(0.1 - ExactFraction(values, lo, lo + 19));
  }
  EXPECT_LT(err, 0.4 * uniform_err);
}

TEST(SelfTuningTest, BudgetEnforced) {
  SelfTuningHistogram h(0, 999, 8);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const int64_t lo = rng.NextInRange(0, 900);
    h.Observe(lo, lo + rng.NextInRange(5, 90), rng.NextDouble() * 0.2);
  }
  EXPECT_LE(h.num_buckets(), 8u);
  EXPECT_NEAR(h.total_mass(), 1.0, 1e-6);
}

TEST(SelfTuningTest, AdaptsToDrift) {
  // The distribution shifts: feedback must move the mass.
  SelfTuningHistogram h(0, 99, 16);
  for (int i = 0; i < 10; ++i) {
    h.Observe(0, 49, 0.9);   // old world: mass on the left
    h.Observe(50, 99, 0.1);
  }
  EXPECT_NEAR(h.RangeSelectivity(0, 49), 0.9, 0.02);
  for (int i = 0; i < 10; ++i) {
    h.Observe(0, 49, 0.2);   // new world: mass moved right
    h.Observe(50, 99, 0.8);
  }
  EXPECT_NEAR(h.RangeSelectivity(0, 49), 0.2, 0.02);
  EXPECT_NEAR(h.RangeSelectivity(50, 99), 0.8, 0.02);
}

TEST(SelfTuningTest, ObservationsOutsideDomainClamp) {
  SelfTuningHistogram h(0, 99, 8);
  h.Observe(-50, 200, 1.0);  // clamps to the whole domain
  EXPECT_NEAR(h.total_mass(), 1.0, 1e-12);
  h.Observe(500, 600, 0.3);  // entirely outside: ignored
  EXPECT_NEAR(h.total_mass(), 1.0, 1e-12);
}

TEST(SelfTuningTest, ZeroFractionObservation) {
  SelfTuningHistogram h(0, 99, 8);
  h.Observe(40, 59, 0.0);
  EXPECT_NEAR(h.RangeSelectivity(40, 59), 0.0, 1e-12);
  EXPECT_NEAR(h.total_mass(), 1.0, 1e-9);
}

}  // namespace
}  // namespace condsel
