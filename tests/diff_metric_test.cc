// Tests for the diff divergence of Section 3.5.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/diff_metric.h"

namespace condsel {
namespace {

TEST(ExactDiffTest, IdenticalDistributionsAreZero) {
  const std::vector<int64_t> v = {1, 2, 2, 3, 3, 3};
  EXPECT_DOUBLE_EQ(ExactDiff(v, v), 0.0);
  // Scaling multiplicities uniformly keeps the distribution identical.
  std::vector<int64_t> doubled;
  for (int64_t x : v) {
    doubled.push_back(x);
    doubled.push_back(x);
  }
  EXPECT_NEAR(ExactDiff(v, doubled), 0.0, 1e-12);
}

TEST(ExactDiffTest, DisjointSupportsAreOne) {
  EXPECT_DOUBLE_EQ(ExactDiff({1, 2, 3}, {10, 11}), 1.0);
}

TEST(ExactDiffTest, EmptyInputsGiveZero) {
  EXPECT_DOUBLE_EQ(ExactDiff({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ExactDiff({1, 2}, {}), 0.0);
}

TEST(ExactDiffTest, HalfOverlapValue) {
  // P = {1: .5, 2: .5}, Q = {1: .5, 3: .5}: L1 = 0 + .5 + .5 = 1, diff = .5.
  EXPECT_DOUBLE_EQ(ExactDiff({1, 2}, {1, 3}), 0.5);
}

TEST(ExactDiffTest, SymmetricAndBounded) {
  Rng rng(5);
  ZipfSampler z(50, 1.0);
  std::vector<int64_t> a(1000), b(1000);
  for (auto& v : a) v = z.Next(rng);
  for (auto& v : b) v = rng.NextInRange(0, 49);
  const double d1 = ExactDiff(a, b);
  const double d2 = ExactDiff(b, a);
  EXPECT_NEAR(d1, d2, 1e-12);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
  EXPECT_GT(d1, 0.1);  // Zipf vs uniform should differ noticeably
}

TEST(ExactDiffTest, TriangleInequality) {
  // Total-variation distance is a metric; spot-check the triangle
  // inequality on three related distributions.
  Rng rng(6);
  std::vector<int64_t> a(500), b(500), c(500);
  for (auto& v : a) v = rng.NextInRange(0, 9);
  for (auto& v : b) v = rng.NextInRange(0, 14);
  for (auto& v : c) v = rng.NextInRange(5, 19);
  EXPECT_LE(ExactDiff(a, c), ExactDiff(a, b) + ExactDiff(b, c) + 1e-12);
}

TEST(HistogramDiffTest, MatchesExactOnFineBuckets) {
  Rng rng(7);
  ZipfSampler z(100, 1.2);
  std::vector<int64_t> a(5000), b(5000);
  for (auto& v : a) v = rng.NextInRange(0, 99);
  for (auto& v : b) v = z.Next(rng);
  const double exact = ExactDiff(a, b);
  const double approx = HistogramDiff(BuildMaxDiff(a, 5000.0, 200),
                                      BuildMaxDiff(b, 5000.0, 200));
  EXPECT_NEAR(approx, exact, 0.08);
}

TEST(HistogramDiffTest, ZeroForSameHistogram) {
  Rng rng(8);
  std::vector<int64_t> a(2000);
  for (auto& v : a) v = rng.NextInRange(0, 99);
  const Histogram h = BuildMaxDiff(a, 2000.0, 50);
  EXPECT_NEAR(HistogramDiff(h, h), 0.0, 1e-12);
}

TEST(HistogramDiffTest, EmptyHistogramGivesZero) {
  const Histogram h = BuildMaxDiff({1, 2, 3}, 3.0, 4);
  const Histogram empty = BuildMaxDiff({}, 0.0, 4);
  EXPECT_DOUBLE_EQ(HistogramDiff(h, empty), 0.0);
}

TEST(HistogramDiffTest, CappedAtOne) {
  const Histogram h1 = BuildMaxDiff({1, 2, 3}, 3.0, 4);
  const Histogram h2 = BuildMaxDiff({100, 200}, 2.0, 4);
  const double d = HistogramDiff(h1, h2);
  EXPECT_GE(d, 0.99);
  EXPECT_LE(d, 1.0);
}

}  // namespace
}  // namespace condsel
