// Tests for the getSelectivity dynamic program (Figure 3, Theorem 1).

#include <gtest/gtest.h>

#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class GetSelectivityTest : public ::testing::Test {
 protected:
  GetSelectivityTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)}),    // 3
        matcher_(&pool_) {}

  void BuildPool(int max_joins) {
    pool_ = GenerateSitPool({query_}, max_joins, builder_);
    matcher_.BindQuery(&query_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
  SitMatcher matcher_;
  NIndError n_ind_;
  DiffError diff_;
};

TEST_F(GetSelectivityTest, EmptySetIsUnit) {
  BuildPool(0);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  const SelEstimate e = gs.Compute(0);
  EXPECT_DOUBLE_EQ(e.selectivity, 1.0);
  EXPECT_DOUBLE_EQ(e.error, 0.0);
}

TEST_F(GetSelectivityTest, SinglePredicateUsesBase) {
  BuildPool(0);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  EXPECT_NEAR(gs.Compute(0b0001).selectivity, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(gs.Compute(0b0001).error, 0.0);
}

TEST_F(GetSelectivityTest, SeparableSubsetMultiplies) {
  BuildPool(0);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  const double lhs = gs.Compute(0b1001).selectivity;
  const double rhs =
      gs.Compute(0b0001).selectivity * gs.Compute(0b1000).selectivity;
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST_F(GetSelectivityTest, J0PoolBestErrorByHand) {
  // With base histograms only, every admissible decomposition peels the
  // filters (conditioned on the rest) before the joins — join factors
  // conditioned on filters are pruned per Section 3.4 — so the best
  // chain is (f_R|3 preds)(f_T|2 joins)(j_RS|j_ST)(j_ST): 3+2+1+0 = 6.
  BuildPool(0);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  const SelEstimate full = gs.Compute(query_.all_predicates());
  EXPECT_DOUBLE_EQ(full.error, 6.0);
}

TEST_F(GetSelectivityTest, RicherPoolNeverHurtsError) {
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  std::vector<double> errors;
  for (int j = 0; j <= 2; ++j) {
    BuildPool(j);
    matcher_.BindQuery(&query_);
    AtomicSelectivityProvider fresh(&matcher_, &n_ind_);
    GetSelectivity gs(&query_, &fresh);
    errors.push_back(gs.Compute(query_.all_predicates()).error);
  }
  EXPECT_LE(errors[1], errors[0]);
  EXPECT_LE(errors[2], errors[1]);
  EXPECT_LT(errors[2], errors[0]);  // SITs must strictly help here
}

TEST_F(GetSelectivityTest, MatchesExhaustiveMinimumNInd) {
  // Theorem 1: the DP must equal the exhaustive minimum over the pruned
  // (separable-first) space, and must not be beaten by the full space.
  for (int j = 0; j <= 2; ++j) {
    BuildPool(j);
    AtomicSelectivityProvider fa(&matcher_, &n_ind_);
    GetSelectivity gs(&query_, &fa);
    const SelEstimate dp = gs.Compute(query_.all_predicates());
    const ExhaustiveResult pruned =
        ExhaustiveBest(query_, query_.all_predicates(), &fa, true);
    const ExhaustiveResult full =
        ExhaustiveBest(query_, query_.all_predicates(), &fa, false);
    EXPECT_DOUBLE_EQ(dp.error, pruned.error) << "J" << j;
    EXPECT_LE(dp.error, full.error + 1e-12) << "J" << j;
  }
}

TEST_F(GetSelectivityTest, MatchesExhaustiveMinimumDiff) {
  for (int j = 0; j <= 2; ++j) {
    BuildPool(j);
    AtomicSelectivityProvider fa(&matcher_, &diff_);
    GetSelectivity gs(&query_, &fa);
    const SelEstimate dp = gs.Compute(query_.all_predicates());
    const ExhaustiveResult pruned =
        ExhaustiveBest(query_, query_.all_predicates(), &fa, true);
    EXPECT_NEAR(dp.error, pruned.error, 1e-12) << "J" << j;
  }
}

TEST_F(GetSelectivityTest, MemoizationAnswersRepeats) {
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  const SelEstimate first = gs.Compute(query_.all_predicates());
  const uint64_t subproblems = gs.stats().subproblems;
  EXPECT_GT(subproblems, 0u);
  matcher_.ResetCallCounter();
  // Re-requesting anything the DP already solved costs nothing.
  const SelEstimate again = gs.Compute(query_.all_predicates());
  EXPECT_DOUBLE_EQ(again.selectivity, first.selectivity);
  EXPECT_DOUBLE_EQ(again.error, first.error);
  EXPECT_EQ(gs.stats().subproblems, subproblems);
  EXPECT_EQ(matcher_.num_calls(), 0u);
  EXPECT_GT(gs.stats().memo_hits, 0u);
}

TEST_F(GetSelectivityTest, SubQueryEstimatesComeForFree) {
  // The paper: "As a byproduct of getSelectivity(R, P), we get the most
  // accurate selectivity estimation for every sub-query".
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  gs.Compute(query_.all_predicates());
  matcher_.ResetCallCounter();
  gs.Compute(0b0111);  // arbitrary sub-query
  EXPECT_EQ(matcher_.num_calls(), 0u);  // fully answered from the memo
}

TEST_F(GetSelectivityTest, OptOracleAtLeastMatchesNoSitAccuracy) {
  // The oracle ranking can't make estimation exact (no SIT conditions on
  // filter predicates), but it must not lose to the fully independent
  // plan on the full query's estimate.
  BuildPool(2);
  OptError opt(&eval_);
  AtomicSelectivityProvider fa(&matcher_, &opt);
  GetSelectivity gs(&query_, &fa);
  const double est = gs.Compute(query_.all_predicates()).selectivity;
  const double truth = eval_.TrueSelectivity(query_, query_.all_predicates());

  BuildPool(0);
  AtomicSelectivityProvider fa0(&matcher_, &opt);
  GetSelectivity gs0(&query_, &fa0);
  const double naive = gs0.Compute(query_.all_predicates()).selectivity;
  EXPECT_LE(std::abs(est - truth), std::abs(naive - truth) + 1e-12);
}

TEST_F(GetSelectivityTest, ExplainMentionsChosenSits) {
  BuildPool(1);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  GetSelectivity gs(&query_, &fa);
  gs.Compute(query_.all_predicates());
  const std::string explain = gs.Explain(query_.all_predicates());
  EXPECT_NE(explain.find("Sel("), std::string::npos);
  EXPECT_NE(explain.find("sit#"), std::string::npos);
}

TEST_F(GetSelectivityTest, TimingSplitAccumulates) {
  BuildPool(2);
  AtomicSelectivityProvider fa(&matcher_, &diff_);
  GetSelectivity gs(&query_, &fa);
  gs.Compute(query_.all_predicates());
  EXPECT_GT(gs.stats().analysis_seconds, 0.0);
  EXPECT_GT(gs.stats().histogram_seconds, 0.0);
  EXPECT_GT(gs.stats().atomic_considered, 0u);
}

}  // namespace
}  // namespace condsel
