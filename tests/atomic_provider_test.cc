// Tests for single-factor approximation with SITs (Section 3.3).

#include <gtest/gtest.h>

#include "condsel/selectivity/atomic_provider.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class FactorApproxTest : public ::testing::Test {
 protected:
  FactorApproxTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)}),    // 3
        matcher_(&pool_) {}

  void UseJ0Pool() {
    pool_.Add(builder_.Build(Ra(), {}));
    pool_.Add(builder_.Build(Rx(), {}));
    pool_.Add(builder_.Build(Sy(), {}));
    pool_.Add(builder_.Build(Sb(), {}));
    pool_.Add(builder_.Build(Tz(), {}));
    pool_.Add(builder_.Build(Tc(), {}));
    matcher_.BindQuery(&query_);
  }

  void AddJoinSit() {
    pool_.Add(builder_.Build(Ra(), {query_.predicate(1)}));
    matcher_.BindQuery(&query_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
  SitMatcher matcher_;
  NIndError n_ind_;
};

TEST_F(FactorApproxTest, SupportedShapes) {
  UseJ0Pool();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  EXPECT_TRUE(fa.SupportedShape(query_, 0b0001));  // one filter
  EXPECT_TRUE(fa.SupportedShape(query_, 0b0010));  // one join
  EXPECT_FALSE(fa.SupportedShape(query_, 0));
  // Two filters: structurally supported (needs a multidimensional SIT to
  // actually be feasible; Score() returns infeasible without one).
  EXPECT_TRUE(fa.SupportedShape(query_, 0b1001));
  EXPECT_FALSE(fa.SupportedShape(query_, 0b0110));  // two joins
  // Join + filter on a non-join column: unsupported.
  EXPECT_FALSE(fa.SupportedShape(query_, 0b0011));
  // Two filters without a covering 2-d SIT: not feasible.
  EXPECT_FALSE(fa.Score(query_, 0b1001, 0).feasible);
}

TEST_F(FactorApproxTest, JoinPlusFilterOnJoinColumnSupported) {
  // Filter on R.x (the join column) + join R.x = S.y: Example 3's shape.
  const Query q({Predicate::Filter(Rx(), 10, 20),
                 Predicate::Join(Rx(), Sy())});
  UseJ0Pool();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  EXPECT_TRUE(fa.SupportedShape(q, 0b11));
}

TEST_F(FactorApproxTest, FilterFactorExactWithFineBaseHistogram) {
  UseJ0Pool();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  FactorChoice c = fa.Score(query_, 0b0001, 0);
  ASSERT_TRUE(c.feasible);
  // R.a in [1,5] on 10 distinct values: 0.5 exactly.
  EXPECT_NEAR(fa.Estimate(query_, 0b0001, c), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(c.error, 0.0);  // nInd with empty Q
}

TEST_F(FactorApproxTest, JoinFactorUsesTwoBaseSits) {
  UseJ0Pool();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  FactorChoice c = fa.Score(query_, 0b0010, 0);
  ASSERT_TRUE(c.feasible);
  ASSERT_EQ(c.sits.size(), 2u);
  // Exact join selectivity is 10 / 80 = 0.125; per-value buckets make
  // the histogram join exact.
  EXPECT_NEAR(fa.Estimate(query_, 0b0010, c), 0.125, 1e-12);
}

TEST_F(FactorApproxTest, InfeasibleWithoutAnySit) {
  // Empty pool: nothing to match.
  matcher_.BindQuery(&query_);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  const FactorChoice c = fa.Score(query_, 0b0001, 0);
  EXPECT_FALSE(c.feasible);
  EXPECT_EQ(c.error, kInfiniteError);
}

TEST_F(FactorApproxTest, PrefersSitWithLargerExpression) {
  UseJ0Pool();
  AddJoinSit();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  // Sel(p0 | p1): SIT(R.a|p1) has nInd error 0; base would give 1. The
  // matcher's maximality already removes the base here, but the choice
  // must carry the join SIT.
  FactorChoice c = fa.Score(query_, 0b0001, 0b0010);
  ASSERT_TRUE(c.feasible);
  ASSERT_EQ(c.sits.size(), 1u);
  EXPECT_FALSE(c.sits[0].sit->is_base());
  EXPECT_DOUBLE_EQ(c.error, 0.0);
}

TEST_F(FactorApproxTest, ConditionalEstimateUsesSitDistribution) {
  UseJ0Pool();
  AddJoinSit();
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  FactorChoice c = fa.Score(query_, 0b0001, 0b0010);
  ASSERT_TRUE(c.feasible);
  // Exact Sel(R.a in [1,5] | R join S): of the 10 join tuples, those with
  // a in {1,2,3,4,5} number 2+2+1+1+1 = 7 -> 0.7. The SIT has per-value
  // buckets, so the estimate is exact.
  EXPECT_NEAR(fa.Estimate(query_, 0b0001, c), 0.7, 1e-12);
  // The base histogram would have said 0.5 — the SIT corrects the
  // dependence between the filter and the join.
  EXPECT_NEAR(eval_.TrueConditionalSelectivity(query_, 0b0001, 0b0010), 0.7,
              1e-12);
}

TEST_F(FactorApproxTest, OptErrorPicksMostAccurateCandidate) {
  UseJ0Pool();
  AddJoinSit();
  OptError opt(&eval_);
  AtomicSelectivityProvider fa(&matcher_, &opt);
  FactorChoice c = fa.Score(query_, 0b0001, 0b0010);
  ASSERT_TRUE(c.feasible);
  // The join SIT estimates Sel(p0|p1) exactly, so Opt error must be ~0.
  EXPECT_NEAR(c.error, 0.0, 1e-12);
  EXPECT_NEAR(c.estimate, 0.7, 1e-12);
}

TEST_F(FactorApproxTest, JoinPlusFilterEstimate) {
  // Example 3 end-to-end: Sel(R.x=S.y, R.x in [10,20]).
  const Query q({Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Rx(), 10, 20)});
  pool_.Add(builder_.Build(Rx(), {}));
  pool_.Add(builder_.Build(Sy(), {}));
  matcher_.BindQuery(&q);
  AtomicSelectivityProvider fa(&matcher_, &n_ind_);
  ASSERT_TRUE(fa.SupportedShape(q, 0b11));
  FactorChoice c = fa.Score(q, 0b11, 0);
  ASSERT_TRUE(c.feasible);
  const double est = fa.Estimate(q, 0b11, c);
  // Exact: matches with x in [10,20]: x=10 (2*2) + x=20 (3*1) = 7 of 80.
  const double exact = 7.0 / 80.0;
  // Histogram join result distribution is exact per-value here; accept
  // small slack from sub-bucket alignment.
  EXPECT_NEAR(est, exact, 0.02);
}

}  // namespace
}  // namespace condsel
