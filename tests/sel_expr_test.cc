// Tests for selectivity expressions, chain decompositions, separability.

#include <gtest/gtest.h>

#include "condsel/selectivity/sel_expr.h"
#include "condsel/selectivity/separability.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

Query ThreeTableQuery() {
  return Query({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)});    // 3
}

TEST(SelExprTest, ValidChainDecompositions) {
  const PredSet full = 0b1111;
  EXPECT_TRUE(IsChainDecomposition(full, {{0b1111, 0}}));
  EXPECT_TRUE(IsChainDecomposition(full, {{0b0001, 0b1110}, {0b1110, 0}}));
  EXPECT_TRUE(IsChainDecomposition(
      full, {{0b0001, 0b1110}, {0b0010, 0b1100}, {0b1100, 0}}));
}

TEST(SelExprTest, InvalidChainDecompositions) {
  const PredSet full = 0b1111;
  // Empty factor head.
  EXPECT_FALSE(IsChainDecomposition(full, {{0, 0b1111}, {0b1111, 0}}));
  // Wrong conditioning set.
  EXPECT_FALSE(IsChainDecomposition(full, {{0b0001, 0b0110}, {0b1110, 0}}));
  // Doesn't cover everything.
  EXPECT_FALSE(IsChainDecomposition(full, {{0b0001, 0b1110}}));
  // Overlapping heads.
  EXPECT_FALSE(
      IsChainDecomposition(full, {{0b0011, 0b1100}, {0b0010, 0b1100}}));
}

TEST(SelExprTest, FactorToStringShape) {
  const Query q = ThreeTableQuery();
  const std::string s = FactorToString(q, Factor{0b0001, 0b0010});
  EXPECT_NE(s.find("Sel("), std::string::npos);
  EXPECT_NE(s.find("|"), std::string::npos);
  const std::string no_cond = FactorToString(q, Factor{0b0001, 0});
  EXPECT_EQ(no_cond.find("|"), std::string::npos);
}

TEST(SeparabilityTest, SeparableSelMirrorsComponents) {
  const Query q = ThreeTableQuery();
  EXPECT_FALSE(IsSeparableSel(q, 0b1111));
  EXPECT_FALSE(IsSeparableSel(q, 0b0111));
  // Filters on R and T without connecting joins: separable.
  EXPECT_TRUE(IsSeparableSel(q, 0b1001));
  // ... but conditioning can connect them.
  EXPECT_FALSE(IsSeparableSel(q, 0b1001, 0b0110));
}

TEST(SeparabilityTest, ExampleOneFromPaper) {
  // Example 1: Sel_{R,S,T}(T.b=5, S.a<10 | R.x=S.y) separates into the
  // T-factor and the (R,S)-factor.
  const Query q({Predicate::Filter(Tc(), 5, 5),      // 0: "T.b=5"
                 Predicate::Filter(Sb(), 0, 9),      // 1: "S.a<10"
                 Predicate::Join(Rx(), Sy())});      // 2: "R.x=S.y"
  EXPECT_TRUE(IsSeparableSel(q, 0b011, 0b100));
  const auto comps = StandardDecomposition(q, 0b111);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], 0b001u);   // the T factor
  EXPECT_EQ(comps[1], 0b110u);   // the R-S factor
}

TEST(SeparabilityTest, StandardDecompositionUniqueAndIdempotent) {
  const Query q = ThreeTableQuery();
  // Lemma 2: repeatedly splitting always lands on the same non-separable
  // parts; each part must itself be non-separable.
  for (PredSet p = 1; p <= q.all_predicates(); ++p) {
    const auto comps = StandardDecomposition(q, p);
    PredSet unioned = 0;
    for (PredSet c : comps) {
      EXPECT_FALSE(IsSeparableSel(q, c)) << "p=" << p;
      EXPECT_EQ(unioned & c, 0u);
      unioned |= c;
      // Idempotence: a component's standard decomposition is itself.
      const auto again = StandardDecomposition(q, c);
      ASSERT_EQ(again.size(), 1u);
      EXPECT_EQ(again[0], c);
    }
    EXPECT_EQ(unioned, p);
  }
}

}  // namespace
}  // namespace condsel
