// Tests for GROUP BY cardinality (distinct count) estimation.

#include <gtest/gtest.h>

#include "condsel/common/zipf.h"
#include "condsel/selectivity/distinct.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }

class DistinctTest : public ::testing::Test {
 protected:
  DistinctTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
};

TEST_F(DistinctTest, ExactCountDistinctGroundTruth) {
  const Query q({Predicate::Join(Rx(), Sy())});
  // Over the join, R.x takes values {10, 20, 30, 40}.
  EXPECT_DOUBLE_EQ(eval_.CountDistinct(q, 1, Rx()), 4.0);
  // Base table: 6 distinct x values; S.y has 6 non-NULL distincts.
  EXPECT_DOUBLE_EQ(
      eval_.CountDistinct(Query(std::vector<Predicate>{}), 0, Rx()), 6.0);
  EXPECT_DOUBLE_EQ(
      eval_.CountDistinct(Query(std::vector<Predicate>{}), 0, Sy()), 6.0);
}

TEST_F(DistinctTest, BaseTableGroupByIsNearExact) {
  const Query q({Predicate::Filter(Ra(), 1, 5)});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  // GROUP BY R.a over sigma_{a in [1,5]}: 5 distinct values (one per
  // row; per-value buckets make this near-exact).
  const double est = EstimateGroupByCardinality(catalog_, q, 1, Ra(),
                                                &matcher, &gs);
  const double truth = eval_.CountDistinct(q, 1, Ra());
  EXPECT_DOUBLE_EQ(truth, 5.0);
  EXPECT_NEAR(est, truth, 1.0);
}

TEST_F(DistinctTest, FilterOnGroupColumnRestrictsDomain) {
  const Query q({Predicate::Filter(Rx(), 10, 20)});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  const double est = EstimateGroupByCardinality(catalog_, q, 1, Rx(),
                                                &matcher, &gs);
  // x in [10,20] covers distinct values {10, 20}.
  EXPECT_NEAR(est, 2.0, 0.6);
}

TEST_F(DistinctTest, SitOverJoinImprovesGroupByEstimate) {
  // GROUP BY R.a over the join: base histogram thinks 10 candidate
  // values; the join keeps only 8 (a = 9, 10 drop out).
  const Query q({Predicate::Join(Rx(), Sy())});
  // Pools only carry referenced columns; the grouping column R.a is not
  // in the query, so add its statistics by hand.
  SitPool j0 = GenerateSitPool({q}, 0, builder_);
  j0.Add(builder_.Build(Ra(), {}));
  SitPool j1_plus = j0;
  j1_plus.Add(builder_.Build(Ra(), {q.predicate(0)}));

  const double truth = eval_.CountDistinct(q, 1, Ra());
  EXPECT_DOUBLE_EQ(truth, 8.0);

  NIndError n_ind;
  auto estimate = [&](const SitPool& pool) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &n_ind);
    GetSelectivity gs(&q, &fa);
    return EstimateGroupByCardinality(catalog_, q, 1, Ra(), &matcher, &gs);
  };
  const double base_est = estimate(j0);
  const double sit_est = estimate(j1_plus);
  EXPECT_LE(std::abs(sit_est - truth), std::abs(base_est - truth) + 1e-9);
  EXPECT_NEAR(sit_est, truth, 1.0);
}

TEST_F(DistinctTest, CardenasSaturatesAtFewRows) {
  // Large domain, tiny filtered result: the estimate must be bounded by
  // the row count, not the domain size.
  Catalog c;
  {
    TableSchema ts;
    ts.name = "big";
    ts.columns = {{"g", 0, 9999, false}, {"f", 0, 99, false}};
    Table t(ts);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
      t.AppendRow({rng.NextInRange(0, 9999), rng.NextInRange(0, 99)});
    }
    c.AddTable(std::move(t));
  }
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  SitBuilder b(&ev, {HistogramType::kMaxDiff, 200});
  const Query q({Predicate::Filter({0, 1}, 0, 0)});  // ~1% of rows
  SitPool pool;
  pool.Add(b.Build({0, 0}, {}));
  pool.Add(b.Build({0, 1}, {}));
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  const double est =
      EstimateGroupByCardinality(c, q, 1, {0, 0}, &matcher, &gs);
  const double rows = ev.Cardinality(q, 1);
  const double truth = ev.CountDistinct(q, 1, {0, 0});
  EXPECT_LE(est, rows * 1.05);          // can't exceed the row count
  EXPECT_NEAR(est, truth, 0.2 * truth); // and tracks the truth
}

}  // namespace
}  // namespace condsel
