// Arena / ArenaVector: the per-Compute bump allocator's contract —
// alignment, block reuse across Reset (the zero-steady-state-allocations
// property the benches measure), oversized requests, and vector growth.

#include "condsel/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "condsel/query/predicate_set.h"

namespace condsel {
namespace {

TEST(ArenaTest, AllocatesAligned) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(ArenaTest, DistinctLiveAllocations) {
  Arena arena;
  int* a = arena.AllocateArray<int>(10);
  int* b = arena.AllocateArray<int>(10);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
}

TEST(ArenaTest, ResetRetainsBlocks) {
  Arena arena(1024);
  // Fill past the first block so several get chained.
  for (int i = 0; i < 100; ++i) arena.Allocate(128);
  const size_t blocks = arena.BlockCount();
  const size_t capacity = arena.TotalCapacity();
  EXPECT_GT(blocks, 1u);
  // Steady state: the same allocation pattern after Reset must reuse the
  // chain without growing it.
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    for (int i = 0; i < 100; ++i) arena.Allocate(128);
    EXPECT_EQ(arena.BlockCount(), blocks);
    EXPECT_EQ(arena.TotalCapacity(), capacity);
  }
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(256);
  char* big = static_cast<char*>(arena.Allocate(10000));
  std::memset(big, 0xAB, 10000);
  EXPECT_GE(arena.TotalCapacity(), 10000u);
  // Reset then reallocate: the oversized block is reused, not re-chained.
  const size_t blocks = arena.BlockCount();
  arena.Reset();
  char* again = static_cast<char*>(arena.Allocate(10000));
  std::memset(again, 0xCD, 10000);
  EXPECT_EQ(arena.BlockCount(), blocks);
}

TEST(ArenaTest, MixedSizesAfterResetReuseChain) {
  Arena arena(512);
  // First epoch creates a mix of normal and oversized blocks.
  arena.Allocate(100);
  arena.Allocate(4000);
  arena.Allocate(100);
  const size_t blocks = arena.BlockCount();
  // A later epoch with small-then-large requests walks the same chain.
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    for (int i = 0; i < 8; ++i) arena.Allocate(50);
    arena.Allocate(4000);
    EXPECT_EQ(arena.BlockCount(), blocks) << "round " << round;
  }
}

TEST(ArenaVectorTest, AppendAndIterate) {
  Arena arena;
  ArenaVector<int> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.Append(i * 3);
  EXPECT_EQ(v.size(), 100u);
  int expect = 0;
  for (int x : v) {
    EXPECT_EQ(x, expect);
    expect += 3;
  }
  EXPECT_EQ(v[99], 297);
  EXPECT_EQ(v.back(), 297);
}

TEST(ArenaVectorTest, GrowthPreservesContents) {
  Arena arena(256);
  ArenaVector<uint32_t> v(&arena);
  for (uint32_t i = 0; i < 1000; ++i) v.Append(i ^ 0xDEADu);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i ^ 0xDEADu);
}

TEST(ArenaVectorTest, ClearKeepsStorage) {
  Arena arena;
  ArenaVector<int> v(&arena);
  for (int i = 0; i < 10; ++i) v.Append(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.Append(42);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42);
}

TEST(SetBitsTest, MatchesSetElements) {
  for (uint32_t mask : {0u, 1u, 0b1010u, 0x80000000u, 0xFFFFFFFFu,
                        0x00F0F00Fu}) {
    const std::vector<int> expect = SetElements(mask);
    std::vector<int> got;
    for (int i : SetBits(mask)) got.push_back(i);
    EXPECT_EQ(got, expect) << "mask=" << mask;
  }
}

}  // namespace
}  // namespace condsel
