// Property-based tests over randomized databases and queries:
//  - Property 1 (atomic decomposition) holds exactly on real data;
//  - Property 2 (separable decomposition) holds exactly;
//  - Theorem 1: the DP equals the exhaustive minimum (separable-first)
//    and is never beaten by the unrestricted search;
//  - estimates are probabilities; memo reuse is consistent.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

// A randomized 3-table database with skew, correlation, and NULLs.
Catalog RandomCatalog(uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;

  auto rows_for = [&](size_t n, auto gen) {
    std::vector<std::vector<int64_t>> rows;
    for (size_t i = 0; i < n; ++i) rows.push_back(gen(i));
    return rows;
  };

  const size_t nr = 40 + rng.NextBelow(40);
  catalog.AddTable(test::MakeTable(
      "R", {"a", "x"}, rows_for(nr, [&](size_t) -> std::vector<int64_t> {
        // x is skewed toward small values; a correlates with x.
        const int64_t x = static_cast<int64_t>(rng.NextBelow(6)) *
                          static_cast<int64_t>(rng.NextBelow(6));
        return {x / 2 + rng.NextInRange(0, 3), x};
      })));
  const size_t ns = 30 + rng.NextBelow(30);
  catalog.AddTable(test::MakeTable(
      "S", {"y", "b"}, rows_for(ns, [&](size_t) -> std::vector<int64_t> {
        const int64_t y = rng.NextBool(0.1)
                              ? kNullValue
                              : static_cast<int64_t>(rng.NextBelow(25));
        return {y, static_cast<int64_t>(rng.NextBelow(8))};
      })));
  const size_t nt = 20 + rng.NextBelow(20);
  catalog.AddTable(test::MakeTable(
      "T", {"z", "c"}, rows_for(nt, [&](size_t) -> std::vector<int64_t> {
        return {static_cast<int64_t>(rng.NextBelow(8)),
                static_cast<int64_t>(rng.NextBelow(10))};
      })));
  return catalog;
}

Query RandomQuery(Rng& rng) {
  std::vector<Predicate> preds;
  preds.push_back(Predicate::Join({0, 1}, {1, 0}));  // R.x = S.y
  if (rng.NextBool(0.7)) {
    preds.push_back(Predicate::Join({1, 1}, {2, 0}));  // S.b = T.z
  }
  const int64_t alo = rng.NextInRange(0, 10);
  preds.push_back(Predicate::Filter({0, 0}, alo, alo + rng.NextInRange(1, 6)));
  if (rng.NextBool(0.6)) {
    const int64_t clo = rng.NextInRange(0, 6);
    preds.push_back(Predicate::Filter({2, 1}, clo, clo + 3));
  }
  return Query(std::move(preds));
}

class PropertiesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertiesTest, AtomicDecompositionExact) {
  Catalog catalog = RandomCatalog(GetParam());
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  Rng rng(GetParam() * 31 + 1);
  const Query q = RandomQuery(rng);
  const PredSet all = q.all_predicates();
  for (PredSet p = all; p != 0; p = PrevSubmask(all, p)) {
    const PredSet cond = all & ~p;
    const double lhs = eval.TrueSelectivity(q, all);
    const double rhs = eval.TrueConditionalSelectivity(q, p, cond) *
                       eval.TrueSelectivity(q, cond);
    ASSERT_NEAR(lhs, rhs, 1e-12);
  }
}

TEST_P(PropertiesTest, SeparableDecompositionExact) {
  Catalog catalog = RandomCatalog(GetParam());
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  // R-filter and T-filter are table-disjoint: Property 2 says the joint
  // selectivity factors exactly.
  const Query q({Predicate::Filter({0, 0}, 0, 4),
                 Predicate::Filter({2, 1}, 0, 5)});
  const double joint = eval.TrueSelectivity(q, 0b11);
  const double product =
      eval.TrueSelectivity(q, 0b01) * eval.TrueSelectivity(q, 0b10);
  EXPECT_NEAR(joint, product, 1e-12);
}

TEST_P(PropertiesTest, DpMatchesExhaustiveAndEstimatesAreProbabilities) {
  Catalog catalog = RandomCatalog(GetParam());
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  SitBuilder builder(&eval, {HistogramType::kMaxDiff, 32});
  Rng rng(GetParam() * 77 + 5);
  const Query q = RandomQuery(rng);

  const SitPool pool = GenerateSitPool({q}, 2, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);

  NIndError n_ind;
  DiffError diff;
  for (const ErrorFunction* fn :
       std::initializer_list<const ErrorFunction*>{&n_ind, &diff}) {
    AtomicSelectivityProvider fa(&matcher, fn);
    GetSelectivity gs(&q, &fa);
    const SelEstimate dp = gs.Compute(q.all_predicates());
    const ExhaustiveResult pruned =
        ExhaustiveBest(q, q.all_predicates(), &fa, true);
    const ExhaustiveResult full =
        ExhaustiveBest(q, q.all_predicates(), &fa, false);
    ASSERT_NEAR(dp.error, pruned.error, 1e-9) << fn->name();
    ASSERT_LE(dp.error, full.error + 1e-9) << fn->name();

    // Every subset's estimate must be a probability.
    for (PredSet p = 1; p <= q.all_predicates(); ++p) {
      const double sel = gs.Compute(p).selectivity;
      ASSERT_GE(sel, 0.0);
      ASSERT_LE(sel, 1.0 + 1e-9);
    }
  }
}

TEST_P(PropertiesTest, MoreConditioningNeverWorsensOptimalNInd) {
  // Growing the SIT pool can only shrink the best nInd error (the old
  // decompositions all remain available).
  Catalog catalog = RandomCatalog(GetParam());
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  SitBuilder builder(&eval, {HistogramType::kMaxDiff, 32});
  Rng rng(GetParam() * 13 + 3);
  const Query q = RandomQuery(rng);
  NIndError n_ind;

  double prev = kInfiniteError;
  for (int j = 0; j <= 2; ++j) {
    const SitPool pool = GenerateSitPool({q}, j, builder);
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &n_ind);
    GetSelectivity gs(&q, &fa);
    const double err = gs.Compute(q.all_predicates()).error;
    ASSERT_LE(err, prev + 1e-12) << "J" << j;
    prev = err;
  }
}

TEST_P(PropertiesTest, DpMatchesExhaustiveWithMultidimSits) {
  // Same optimality property when the pool also carries 2-d SITs, which
  // enable filter-pair factors in both searches.
  Catalog catalog = RandomCatalog(GetParam());
  CardinalityCache cache;
  Evaluator eval(&catalog, &cache);
  SitBuilder builder(&eval, {HistogramType::kMaxDiff, 32});
  Rng rng(GetParam() * 91 + 7);
  const Query q = RandomQuery(rng);

  SitPool pool = GenerateSitPool({q}, 2, builder);
  // Base-table 2-d SITs over same-table filter-attribute pairs of q.
  const std::vector<int> fs = SetElements(q.filter_predicates());
  for (size_t a = 0; a < fs.size(); ++a) {
    for (size_t b = a + 1; b < fs.size(); ++b) {
      const ColumnRef ca = q.predicate(fs[a]).column();
      const ColumnRef cb = q.predicate(fs[b]).column();
      if (ca.table == cb.table) pool.Add(builder.Build2d(ca, cb, {}));
    }
  }
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  DiffError diff;
  AtomicSelectivityProvider fa(&matcher, &diff);
  GetSelectivity gs(&q, &fa);
  const SelEstimate dp = gs.Compute(q.all_predicates());
  const ExhaustiveResult pruned =
      ExhaustiveBest(q, q.all_predicates(), &fa, true);
  ASSERT_NEAR(dp.error, pruned.error, 1e-9);
  ASSERT_GE(dp.selectivity, 0.0);
  ASSERT_LE(dp.selectivity, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertiesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace condsel
