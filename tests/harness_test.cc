// Tests for the experiment harness: sub-plan families, runner, report.

#include <gtest/gtest.h>

#include "condsel/harness/metrics.h"
#include "condsel/harness/report.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

Query ThreeTableQuery() {
  return Query({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)});    // 3
}

TEST(SubPlanFamilyTest, EnumeratesPlanNodes) {
  const Query q = ThreeTableQuery();
  const auto plans = SubPlanFamily(q);
  // Scan nodes with filters: {f_R}, {f_T}. Join nodes: {j_RS + f_R},
  // {j_ST + f_T}, {j_RS, j_ST + both filters}. Total 5.
  ASSERT_EQ(plans.size(), 5u);
  EXPECT_EQ(plans.back(), q.all_predicates());  // full query included
  // Sorted bottom-up by size.
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(SetSize(plans[i - 1]), SetSize(plans[i]));
  }
  // Every join node carries all applicable filters.
  for (PredSet p : plans) {
    const TableSet tables = q.TablesOfSubset(p);
    for (int i : SetElements(q.filter_predicates())) {
      if (Contains(tables, q.predicate(i).column().table)) {
        EXPECT_TRUE(Contains(p, i)) << "plan " << p;
      }
    }
  }
}

TEST(SubPlanFamilyTest, NoFiltersMeansJoinNodesOnly) {
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Join(Sb(), Tz())});
  const auto plans = SubPlanFamily(q);
  // {j1}, {j2}, {j1, j2}; scan nodes carry no predicates and are skipped.
  EXPECT_EQ(plans.size(), 3u);
}

TEST(SubPlanFamilyTest, CrossCardinalityMatchesTables) {
  Catalog c = test::MakeTinyCatalog();
  const Query q = ThreeTableQuery();
  EXPECT_DOUBLE_EQ(CrossProductCardinality(c, q, 0b0001), 10.0);
  EXPECT_DOUBLE_EQ(CrossProductCardinality(c, q, 0b0010), 80.0);
  EXPECT_DOUBLE_EQ(CrossProductCardinality(c, q, q.all_predicates()), 480.0);
}

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {
    workload_.push_back(ThreeTableQuery());
    workload_.push_back(Query({Predicate::Filter(Ra(), 2, 6),
                               Predicate::Join(Rx(), Sy()),
                               Predicate::Filter(Sb(), 100, 300)}));
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  std::vector<Query> workload_;
};

TEST_F(RunnerTest, AllTechniquesRun) {
  const SitPool pool = GenerateSitPool(workload_, 2, builder_);
  Runner runner(&catalog_, &eval_);
  for (Technique t : {Technique::kNoSit, Technique::kGvm, Technique::kGsNInd,
                      Technique::kGsDiff, Technique::kGsOpt}) {
    const WorkloadRunResult r = runner.Run(workload_, pool, t);
    EXPECT_EQ(r.per_query.size(), workload_.size()) << TechniqueName(t);
    EXPECT_GE(r.avg_abs_error, 0.0) << TechniqueName(t);
    EXPECT_GT(r.avg_matcher_calls, 0.0) << TechniqueName(t);
  }
}

TEST_F(RunnerTest, SitsImproveAccuracyOnSkewedJoins) {
  const SitPool j0 = GenerateSitPool(workload_, 0, builder_);
  const SitPool j2 = GenerateSitPool(workload_, 2, builder_);
  Runner runner(&catalog_, &eval_);
  const double err_j0 =
      runner.Run(workload_, j0, Technique::kGsNInd).avg_abs_error;
  const double err_j2 =
      runner.Run(workload_, j2, Technique::kGsNInd).avg_abs_error;
  EXPECT_LE(err_j2, err_j0);
}

TEST_F(RunnerTest, GsOptIsBestOrTied) {
  const SitPool pool = GenerateSitPool(workload_, 2, builder_);
  Runner runner(&catalog_, &eval_);
  const double opt =
      runner.Run(workload_, pool, Technique::kGsOpt).avg_abs_error;
  for (Technique t :
       {Technique::kNoSit, Technique::kGsNInd, Technique::kGsDiff}) {
    EXPECT_LE(opt, runner.Run(workload_, pool, t).avg_abs_error + 1e-6)
        << TechniqueName(t);
  }
}

TEST_F(RunnerTest, FullQueryStatsPopulated) {
  const SitPool pool = GenerateSitPool(workload_, 1, builder_);
  Runner runner(&catalog_, &eval_);
  const WorkloadRunResult r =
      runner.Run(workload_, pool, Technique::kGsDiff);
  for (const QueryRunResult& qr : r.per_query) {
    EXPECT_GT(qr.full_query_true, 0.0);
    EXPECT_GE(qr.full_query_est, 0.0);
    EXPECT_GE(qr.max_abs_error, 0.0);
    EXPECT_GT(qr.analysis_seconds + qr.histogram_seconds, 0.0);
  }
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(FormatCount(12345.0), "12345");
  EXPECT_EQ(FormatCount(12345.5), "12345.5");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  // PrintTable must not crash on ragged rows.
  PrintTable({"a", "b"}, {{"1"}, {"22", "333"}});
}

TEST(TechniqueNameTest, AllNamed) {
  EXPECT_STREQ(TechniqueName(Technique::kNoSit), "noSit");
  EXPECT_STREQ(TechniqueName(Technique::kGvm), "GVM");
  EXPECT_STREQ(TechniqueName(Technique::kGsNInd), "GS-nInd");
  EXPECT_STREQ(TechniqueName(Technique::kGsDiff), "GS-Diff");
  EXPECT_STREQ(TechniqueName(Technique::kGsOpt), "GS-Opt");
}

}  // namespace
}  // namespace condsel
