// Tests for the budget-constrained SIT advisor.

#include <gtest/gtest.h>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_advisor.h"

namespace condsel {
namespace {

class SitAdvisorTest : public ::testing::Test {
 protected:
  SitAdvisorTest() {
    SnowflakeOptions opt;
    opt.scale = 0.003;
    catalog_ = BuildSnowflake(opt);
    eval_ = std::make_unique<Evaluator>(&catalog_, &cache_);
    builder_ = std::make_unique<SitBuilder>(eval_.get(), SitBuildOptions{});
    WorkloadOptions wopt;
    wopt.num_queries = 5;
    wopt.num_joins = 3;
    workload_ = GenerateWorkload(catalog_, eval_.get(), wopt);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  std::unique_ptr<Evaluator> eval_;
  std::unique_ptr<SitBuilder> builder_;
  std::vector<Query> workload_;
};

TEST_F(SitAdvisorTest, RespectsBudget) {
  AdvisorOptions opt;
  opt.budget = 3;
  opt.max_join_preds = 2;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);
  EXPECT_LE(r.steps.size(), 3u);
  // Pool holds one base histogram per catalog column + chosen SITs only.
  int32_t num_columns = 0;
  for (TableId t = 0; t < catalog_.num_tables(); ++t) {
    num_columns += catalog_.table(t).num_columns();
  }
  EXPECT_EQ(r.pool.size(),
            num_columns + static_cast<int32_t>(r.steps.size()));
}

TEST_F(SitAdvisorTest, ScoreDecreasesMonotonically) {
  AdvisorOptions opt;
  opt.budget = 4;
  opt.max_join_preds = 2;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);
  ASSERT_FALSE(r.steps.empty());
  double prev = r.initial_score;
  for (const AdvisorStep& s : r.steps) {
    EXPECT_LT(s.score_after, prev);
    prev = s.score_after;
  }
}

TEST_F(SitAdvisorTest, ZeroBudgetKeepsBasesOnly) {
  AdvisorOptions opt;
  opt.budget = 0;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);
  EXPECT_TRUE(r.steps.empty());
  for (const Sit& s : r.pool.sits()) EXPECT_TRUE(s.is_base());
}

TEST_F(SitAdvisorTest, ChosenSitsImproveTrueAccuracy) {
  // The advisor optimizes the Diff score without ground truth; verify
  // that the choices also reduce the *true* error.
  AdvisorOptions opt;
  opt.budget = 6;
  opt.max_join_preds = 2;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);
  ASSERT_GE(r.steps.size(), 1u);

  Runner runner(&catalog_, eval_.get());
  const SitPool bases = GenerateSitPool(workload_, 0, *builder_);
  const double base_err =
      runner.Run(workload_, bases, Technique::kGsDiff).avg_abs_error;
  const double advised_err =
      runner.Run(workload_, r.pool, Technique::kGsDiff).avg_abs_error;
  EXPECT_LT(advised_err, base_err);
}

TEST_F(SitAdvisorTest, FewSitsCaptureMostOfFullPoolBenefit) {
  AdvisorOptions opt;
  opt.budget = 8;
  opt.max_join_preds = 2;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);

  Runner runner(&catalog_, eval_.get());
  const SitPool full = GenerateSitPool(workload_, 2, *builder_);
  const SitPool bases = GenerateSitPool(workload_, 0, *builder_);
  const double base_err =
      runner.Run(workload_, bases, Technique::kGsDiff).avg_abs_error;
  const double full_err =
      runner.Run(workload_, full, Technique::kGsDiff).avg_abs_error;
  const double advised_err =
      runner.Run(workload_, r.pool, Technique::kGsDiff).avg_abs_error;
  // The advised pool (a fraction of the full pool's size) should close
  // most of the gap between bases and the full pool.
  EXPECT_LT(r.pool.size(), full.size());
  EXPECT_LE(advised_err, base_err);
  EXPECT_LE(advised_err - full_err, 0.7 * (base_err - full_err) + 1e-9);
}

TEST_F(SitAdvisorTest, CitationsNameTheStatisticBehindEveryUse) {
  AdvisorOptions opt;
  opt.budget = 4;
  opt.max_join_preds = 2;
  const AdvisorResult r = AdviseSits(workload_, *builder_, opt);

  // One citation row per pool statistic; any statistic the workload
  // actually used must name its provenance (source + histogram kind).
  EXPECT_EQ(r.citations.size(), static_cast<size_t>(r.pool.size()));
  uint64_t total_uses = 0;
  for (const SitCitation& c : r.citations) {
    EXPECT_GE(c.sit_id, 0);
    total_uses += c.uses;
    if (c.uses > 0) {
      EXPECT_FALSE(c.source.empty()) << "sit#" << c.sit_id;
      EXPECT_FALSE(c.kind.empty()) << "sit#" << c.sit_id;
    }
  }
  // The workload estimates are built from these statistics, so at least
  // the base histograms must register uses.
  EXPECT_GT(total_uses, 0u);
}

}  // namespace
}  // namespace condsel
