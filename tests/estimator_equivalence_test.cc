// Estimator-equivalence regression harness.
//
// Runs all five estimators (getSelectivity with Diff and nInd rankings,
// the exhaustive reference, GVM, noSit, and the optimizer-coupled
// estimator) over deterministic seeded snowflake + tpch_lite workloads
// and compares every estimate — formatted as hexfloats, so equality is
// bit-exact — against a golden file checked into the repo. Any refactor
// of the estimation core must leave this file byte-identical: the layered
// provider/memo/decomposer split is required to be a pure reshaping of
// the numerics.
//
// Regenerate the golden (only when an estimate change is intended) with:
//   CONDSEL_REGOLD=1 ./estimator_equivalence_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/tpch_lite.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/optimizer/integration.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

// Exhaustive search is exponential-factorial; cap like condsel_cli does.
constexpr int kMaxExhaustivePreds = 6;

std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// One line per (estimator, subset) estimate, in a fixed deterministic
// order. The workload generator and SIT builder are seeded, so the whole
// transcript is a pure function of the code under test.
void AppendDatabaseLines(const char* tag, const Catalog& catalog,
                         int num_joins, std::vector<std::string>* out) {
  CardinalityCache cache;
  Evaluator evaluator(const_cast<Catalog*>(&catalog), &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});

  WorkloadOptions wopt;
  wopt.num_queries = 4;
  wopt.num_joins = num_joins;
  wopt.num_filters = 3;
  wopt.seed = 20260807;
  std::vector<Query> workload = GenerateWorkload(catalog, &evaluator, wopt);
  SitPool pool = GenerateSitPool(workload, 2, builder);

  NIndError nind;
  DiffError diff;

  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const Query& q = workload[qi];
    const PredSet all = q.all_predicates();
    const std::vector<PredSet> subplans = SubPlanFamily(q);

    auto line = [&](const char* est, PredSet p, double sel, double err) {
      std::ostringstream os;
      os << tag << " q" << qi << " " << est << " p=" << p
         << " sel=" << Hex(sel) << " err=" << Hex(err);
      out->push_back(os.str());
    };

    // getSelectivity, both structural rankings, every optimizer sub-plan.
    for (const ErrorFunction* fn :
         {static_cast<const ErrorFunction*>(&diff),
          static_cast<const ErrorFunction*>(&nind)}) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, fn);
      GetSelectivity gs(&q, &provider);
      for (PredSet p : subplans) {
        const SelEstimate e = gs.Compute(p);
        line(fn == &diff ? "gs-diff" : "gs-nind", p, e.selectivity, e.error);
      }
    }

    // Exhaustive reference (full query only; it is not memoized).
    if (SetSize(all) <= kMaxExhaustivePreds) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      const ExhaustiveResult ex =
          ExhaustiveBest(q, all, &provider, /*separable_first=*/true);
      line("exhaustive", all, ex.selectivity, ex.error);
    }

    // GVM and noSit baselines, every sub-plan.
    {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      GvmEstimator gvm(&matcher);
      NoSitEstimator nosit(&matcher);
      for (PredSet p : subplans) {
        line("gvm", p, gvm.Estimate(q, p), gvm.last_n_ind());
        line("nosit", p, nosit.Estimate(q, p), 0.0);
      }
    }

    // Optimizer-coupled estimator, every sub-plan it accepts.
    {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      OptimizerCoupledEstimator coupled(&q, &provider);
      for (PredSet p : subplans) {
        StatusOr<SelEstimate> e = coupled.TryEstimate(p);
        if (e.ok()) {
          line("coupled", p, e.value().selectivity, e.value().error);
        } else {
          std::ostringstream os;
          os << tag << " q" << qi << " coupled p=" << p << " status="
             << StatusCodeName(e.status().code());
          out->push_back(os.str());
        }
      }
    }
  }
}

std::vector<std::string> BuildTranscript() {
  std::vector<std::string> lines;
  {
    SnowflakeOptions opt;
    opt.scale = 0.01;
    const Catalog catalog = BuildSnowflake(opt);
    AppendDatabaseLines("snowflake", catalog, /*num_joins=*/3, &lines);
  }
  {
    TpchLiteOptions opt;
    opt.scale = 0.05;
    const Catalog catalog = BuildTpchLite(opt);
    AppendDatabaseLines("tpch", catalog, /*num_joins=*/2, &lines);
  }
  return lines;
}

std::string GoldenPath() {
  return std::string(CONDSEL_GOLDEN_DIR) + "/estimator_equivalence.golden";
}

TEST(EstimatorEquivalence, MatchesGolden) {
  const std::vector<std::string> lines = BuildTranscript();
  ASSERT_FALSE(lines.empty());

  if (std::getenv("CONDSEL_REGOLD") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath();
    for (const std::string& l : lines) out << l << "\n";
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing golden " << GoldenPath()
      << " — regenerate with CONDSEL_REGOLD=1";
  std::vector<std::string> golden;
  for (std::string l; std::getline(in, l);) golden.push_back(l);

  ASSERT_EQ(golden.size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(golden[i], lines[i]) << "transcript line " << i;
  }
}

// getSelectivity transcript only, with a configurable thread count — the
// parallel driver must reproduce the sequential estimates bit-for-bit.
std::vector<std::string> GsTranscript(const Catalog& catalog, int num_joins,
                                      int threads) {
  CardinalityCache cache;
  Evaluator evaluator(const_cast<Catalog*>(&catalog), &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});
  WorkloadOptions wopt;
  wopt.num_queries = 4;
  wopt.num_joins = num_joins;
  wopt.num_filters = 3;
  wopt.seed = 20260807;
  std::vector<Query> workload = GenerateWorkload(catalog, &evaluator, wopt);
  SitPool pool = GenerateSitPool(workload, 2, builder);

  EstimationBudget budget;
  budget.threads = threads;
  NIndError nind;
  DiffError diff;
  std::vector<std::string> lines;
  for (const Query& q : workload) {
    for (const ErrorFunction* fn :
         {static_cast<const ErrorFunction*>(&diff),
          static_cast<const ErrorFunction*>(&nind)}) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, fn);
      GetSelectivity gs(&q, &provider, &budget);
      for (PredSet p : SubPlanFamily(q)) {
        const SelEstimate e = gs.Compute(p);
        lines.push_back("p=" + std::to_string(p) + " sel=" +
                        Hex(e.selectivity) + " err=" + Hex(e.error));
      }
    }
  }
  return lines;
}

TEST(EstimatorEquivalence, ParallelDriverMatchesSequential) {
  SnowflakeOptions opt;
  opt.scale = 0.01;
  const Catalog catalog = BuildSnowflake(opt);
  const std::vector<std::string> seq =
      GsTranscript(catalog, /*num_joins=*/3, /*threads=*/1);
  const std::vector<std::string> par =
      GsTranscript(catalog, /*num_joins=*/3, /*threads=*/4);
  ASSERT_FALSE(seq.empty());
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "estimate " << i;
  }
}

}  // namespace
}  // namespace condsel
