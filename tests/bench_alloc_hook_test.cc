// Self-test for the bench allocation-counting hooks: every replaceable
// operator-new form (ordinary, array, nothrow, over-aligned, and their
// combinations) must bump g_alloc_count, or allocs_per_estimate in the
// BENCH_*.json artifacts silently undercounts. Including bench_common.h
// replaces the global operators for this whole test binary, exactly as it
// does for each bench executable.

#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <new>

namespace condsel {
namespace bench {
namespace {

// Each form is exercised by calling the operator function directly: a
// new-*expression* paired with its delete may legally be elided by the
// compiler, which would turn these probes into no-ops.

TEST(AllocHookTest, OrdinaryFormCounted) {
  const uint64_t before = AllocCount();
  void* p = ::operator new(32);
  EXPECT_GT(AllocCount(), before);
  ::operator delete(p);
}

TEST(AllocHookTest, ArrayFormCounted) {
  const uint64_t before = AllocCount();
  void* p = ::operator new[](32);
  EXPECT_GT(AllocCount(), before);
  ::operator delete[](p);
}

TEST(AllocHookTest, NothrowFormsCounted) {
  uint64_t before = AllocCount();
  void* p = ::operator new(32, std::nothrow);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(AllocCount(), before);
  ::operator delete(p, std::nothrow);

  before = AllocCount();
  p = ::operator new[](32, std::nothrow);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(AllocCount(), before);
  ::operator delete[](p, std::nothrow);
}

TEST(AllocHookTest, OverAlignedFormsCounted) {
  uint64_t before = AllocCount();
  void* p = ::operator new(128, std::align_val_t{128});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 128, 0u);
  EXPECT_GT(AllocCount(), before);
  ::operator delete(p, std::align_val_t{128});

  before = AllocCount();
  p = ::operator new[](128, std::align_val_t{128});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 128, 0u);
  EXPECT_GT(AllocCount(), before);
  ::operator delete[](p, std::align_val_t{128});
}

TEST(AllocHookTest, OverAlignedNothrowFormsCounted) {
  uint64_t before = AllocCount();
  void* p = ::operator new(64, std::align_val_t{64}, std::nothrow);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(AllocCount(), before);
  ::operator delete(p, std::align_val_t{64}, std::nothrow);

  before = AllocCount();
  p = ::operator new[](64, std::align_val_t{64}, std::nothrow);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(AllocCount(), before);
  ::operator delete[](p, std::align_val_t{64}, std::nothrow);
}

// An over-aligned new-expression must route through the aligned form and
// produce correctly aligned storage (the original hook left these to
// libstdc++'s aligned_alloc default, bypassing the counter entirely).
TEST(AllocHookTest, OverAlignedNewExpressionCountedAndAligned) {
  struct alignas(64) Wide {
    double d[8];
  };
  const uint64_t before = AllocCount();
  Wide* volatile w = new Wide();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(w) % 64, 0u);
  EXPECT_GT(AllocCount(), before);
  delete w;
}

// The startup probe the benches run: nullptr means every form counted.
TEST(AllocHookTest, SelfTestPasses) {
  EXPECT_EQ(AllocHookSelfTest(), nullptr);
}

}  // namespace
}  // namespace bench
}  // namespace condsel
