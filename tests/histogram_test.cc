// Tests for histogram construction and range/equality estimation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/histogram.h"

namespace condsel {
namespace {

std::vector<int64_t> UniformValues(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, domain - 1);
  return v;
}

std::vector<int64_t> ZipfValues(size_t n, int64_t domain, double theta,
                                uint64_t seed) {
  Rng rng(seed);
  ZipfSampler z(domain, theta);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = z.Next(rng);
  return v;
}

// Exact fraction of values in [lo, hi], relative to `total`.
double ExactRangeSel(const std::vector<int64_t>& values, double total,
                     int64_t lo, int64_t hi) {
  size_t c = 0;
  for (int64_t v : values) c += (v >= lo && v <= hi);
  return static_cast<double>(c) / total;
}

TEST(HistogramTest, EmptyInput) {
  const Histogram h = BuildMaxDiff({}, 0.0, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(h.EqualsSelectivity(5), 0.0);
  EXPECT_DOUBLE_EQ(h.total_frequency(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  const Histogram h = BuildMaxDiff({7, 7, 7}, 3.0, 10);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0, 6), 0.0);
  EXPECT_DOUBLE_EQ(h.EqualsSelectivity(7), 1.0);
}

TEST(HistogramTest, NullsDiluteFrequencies) {
  // 3 values out of a 6-tuple source: total frequency is 0.5.
  const Histogram h = BuildMaxDiff({1, 2, 3}, 6.0, 10);
  EXPECT_NEAR(h.total_frequency(), 0.5, 1e-12);
  EXPECT_NEAR(h.RangeSelectivity(1, 3), 0.5, 1e-12);
}

TEST(HistogramTest, ExactWhenBucketsCoverAllDistincts) {
  // With enough buckets every distinct value gets its own bucket and all
  // estimates are exact.
  const std::vector<int64_t> vals = {1, 1, 2, 5, 5, 5, 9, 12, 12, 20};
  const Histogram h = BuildMaxDiff(vals, 10.0, 64);
  for (int64_t lo = 0; lo <= 21; ++lo) {
    for (int64_t hi = lo; hi <= 21; ++hi) {
      EXPECT_NEAR(h.RangeSelectivity(lo, hi),
                  ExactRangeSel(vals, 10.0, lo, hi), 1e-12)
          << lo << ".." << hi;
    }
  }
  EXPECT_NEAR(h.EqualsSelectivity(5), 0.3, 1e-12);
  EXPECT_NEAR(h.TotalDistinct(), 6.0, 1e-12);
}

TEST(HistogramTest, FullDomainRangeIsTotalFrequency) {
  const auto vals = UniformValues(5000, 1000, 1);
  for (const HistogramType t :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth}) {
    const Histogram h = BuildHistogram(t, vals, 5000.0, 50);
    EXPECT_NEAR(h.RangeSelectivity(0, 999), 1.0, 1e-9)
        << HistogramTypeName(t);
    EXPECT_NEAR(h.total_frequency(), 1.0, 1e-9);
  }
}

TEST(HistogramTest, BucketBudgetRespected) {
  const auto vals = UniformValues(10000, 5000, 2);
  for (const HistogramType t :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth}) {
    const Histogram h = BuildHistogram(t, vals, 10000.0, 20);
    EXPECT_LE(h.num_buckets(), 20u) << HistogramTypeName(t);
    EXPECT_GE(h.num_buckets(), 2u) << HistogramTypeName(t);
  }
}

TEST(HistogramTest, BucketsSortedAndDisjoint) {
  const auto vals = ZipfValues(20000, 2000, 1.0, 3);
  for (const HistogramType t :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth}) {
    const Histogram h = BuildHistogram(t, vals, 20000.0, 100);
    const auto& b = h.buckets();
    for (size_t i = 1; i < b.size(); ++i) {
      EXPECT_LT(b[i - 1].hi, b[i].lo) << HistogramTypeName(t);
    }
  }
}

TEST(HistogramTest, MaxDiffIsolatesHeavyHitters) {
  // One huge spike amid a uniform sea: MaxDiff should put the spike in
  // its own bucket, making its equality estimate (nearly) exact.
  std::vector<int64_t> vals = UniformValues(1000, 1000, 4);
  for (int i = 0; i < 4000; ++i) vals.push_back(500);
  const Histogram h = BuildMaxDiff(vals, 5000.0, 30);
  EXPECT_NEAR(h.EqualsSelectivity(500), 4000.0 / 5000.0, 0.05);
}

TEST(HistogramTest, RangeAccuracyOnSkewedData) {
  const auto vals = ZipfValues(50000, 1000, 1.2, 5);
  const Histogram h = BuildMaxDiff(vals, 50000.0, 200);
  // Estimates over moderately wide ranges should land within a couple of
  // percentage points of truth even under heavy skew.
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 9}, {0, 49}, {10, 99}, {100, 499}, {500, 999}}) {
    EXPECT_NEAR(h.RangeSelectivity(lo, hi),
                ExactRangeSel(vals, 50000.0, lo, hi), 0.03)
        << lo << ".." << hi;
  }
}

TEST(HistogramTest, EquiDepthBalancesMass) {
  const auto vals = ZipfValues(30000, 500, 1.0, 6);
  const Histogram h = BuildEquiDepth(vals, 30000.0, 20);
  double max_f = 0.0;
  for (const Bucket& b : h.buckets()) max_f = std::max(max_f, b.frequency);
  // No bucket should carry more than a few times the average mass, except
  // when a single value dominates. Zipf(1.0) rank-0 mass over 500 values
  // is ~15%, so allow that.
  EXPECT_LE(max_f, 0.25);
}

TEST(HistogramTest, EndBiasedIsolatesHeavyHitters) {
  // Two spikes in a uniform sea: end-biased gives them singleton buckets,
  // so their equality estimates are exact even at a tiny budget.
  std::vector<int64_t> vals = UniformValues(2000, 1000, 12);
  for (int i = 0; i < 3000; ++i) vals.push_back(250);
  for (int i = 0; i < 2000; ++i) vals.push_back(750);
  const double total = static_cast<double>(vals.size());
  const Histogram h = BuildEndBiased(vals, total, 10);
  EXPECT_NEAR(h.EqualsSelectivity(250), 3000.0 / total, 0.02);
  EXPECT_NEAR(h.EqualsSelectivity(750), 2000.0 / total, 0.02);
  EXPECT_LE(h.num_buckets(), 10u);
}

TEST(HistogramTest, DomainEndpoints) {
  const Histogram h = BuildMaxDiff({5, 8, 20}, 3.0, 8);
  const auto [lo, hi] = h.Domain();
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(hi, 20);
}

TEST(HistogramTest, DistinctCountsHelper) {
  const auto runs = DistinctCounts({1, 1, 2, 2, 2, 7});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (std::pair<int64_t, uint64_t>{1, 2}));
  EXPECT_EQ(runs[1], (std::pair<int64_t, uint64_t>{2, 3}));
  EXPECT_EQ(runs[2], (std::pair<int64_t, uint64_t>{7, 1}));
}

TEST(HistogramTest, EveryBuilderHandlesDegenerateInputs) {
  for (HistogramType type :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth, HistogramType::kEndBiased}) {
    // Empty column.
    const Histogram empty = BuildHistogram(type, {}, 0.0, 8);
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.RangeSelectivity(-100, 100), 0.0);
    // Empty column of a non-empty source (all NULLs).
    const Histogram nulls = BuildHistogram(type, {}, 50.0, 8);
    EXPECT_DOUBLE_EQ(nulls.RangeSelectivity(-100, 100), 0.0);
    // Single distinct value.
    const Histogram single = BuildHistogram(type, {42, 42, 42, 42}, 4.0, 8);
    EXPECT_EQ(single.num_buckets(), 1u);
    EXPECT_DOUBLE_EQ(single.EqualsSelectivity(42), 1.0);
    // Bucket budget far above the distinct count: exact, within budget.
    const Histogram wide =
        BuildHistogram(type, {1, 2, 2, 3}, 4.0, 1000);
    EXPECT_LE(wide.num_buckets(), 3u);
    EXPECT_NEAR(wide.RangeSelectivity(1, 3), 1.0, 1e-12);
    EXPECT_NEAR(wide.EqualsSelectivity(2), 0.5, 1e-12);
    // Budget of one: everything in a single bucket, mass conserved.
    const Histogram one = BuildHistogram(type, {1, 5, 9}, 3.0, 1);
    EXPECT_NEAR(one.total_frequency(), 1.0, 1e-12);
  }
}

TEST(HistogramTest, ExtremeDomainDoesNotOverflow) {
  // A column spanning almost the whole int64 domain: bucket-width
  // arithmetic must not overflow (equi-width computes hi - lo + 1).
  const int64_t lo = std::numeric_limits<int64_t>::min() + 1;
  const int64_t hi = std::numeric_limits<int64_t>::max() - 1;
  for (HistogramType type :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth, HistogramType::kEndBiased}) {
    const Histogram h = BuildHistogram(type, {lo, 0, hi}, 3.0, 2);
    EXPECT_NEAR(h.total_frequency(), 1.0, 1e-12);
    const double sel = h.RangeSelectivity(lo, hi);
    EXPECT_TRUE(std::isfinite(sel));
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
}

// Parameterized sweep: every builder must reproduce total mass and stay
// within budget across data shapes.
class BuilderSweepTest
    : public ::testing::TestWithParam<std::tuple<HistogramType, double, int>> {
};

TEST_P(BuilderSweepTest, MassConservation) {
  const auto [type, theta, buckets] = GetParam();
  const auto vals = ZipfValues(20000, 1500, theta, 99);
  const Histogram h = BuildHistogram(type, vals, 20000.0, buckets);
  EXPECT_LE(static_cast<int>(h.num_buckets()), buckets);
  EXPECT_NEAR(h.total_frequency(), 1.0, 1e-9);
  // Partition property: disjoint ranges sum to the total.
  const double left = h.RangeSelectivity(0, 700);
  const double right = h.RangeSelectivity(701, 1499);
  EXPECT_NEAR(left + right, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BuilderSweepTest,
    ::testing::Combine(::testing::Values(HistogramType::kMaxDiff,
                                         HistogramType::kEquiDepth,
                                         HistogramType::kEquiWidth,
                                         HistogramType::kEndBiased),
                       ::testing::Values(0.0, 0.5, 1.0, 1.5),
                       ::testing::Values(8, 50, 200)));

}  // namespace
}  // namespace condsel
