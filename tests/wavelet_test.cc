// Tests for Haar-wavelet synopses.

#include <gtest/gtest.h>

#include <cmath>

#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/wavelet/wavelet.h"

namespace condsel {
namespace {

double ExactRangeSel(const std::vector<int64_t>& values, double total,
                     int64_t lo, int64_t hi) {
  size_t c = 0;
  for (int64_t v : values) c += (v >= lo && v <= hi);
  return static_cast<double>(c) / total;
}

TEST(WaveletTest, EmptyInput) {
  const WaveletSynopsis w = BuildWavelet({}, 0.0, 8);
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.RangeSelectivity(0, 100), 0.0);
}

TEST(WaveletTest, ExactWithFullBudget) {
  // Budget >= grid cells: the synopsis is lossless on the grid.
  const std::vector<int64_t> vals = {0, 0, 1, 2, 2, 2, 5, 7};
  const WaveletSynopsis w = BuildWavelet(vals, 8.0, 1024);
  for (int64_t lo = 0; lo <= 7; ++lo) {
    for (int64_t hi = lo; hi <= 7; ++hi) {
      EXPECT_NEAR(w.RangeSelectivity(lo, hi),
                  ExactRangeSel(vals, 8.0, lo, hi), 1e-9)
          << lo << ".." << hi;
    }
  }
}

TEST(WaveletTest, TotalMassWithAverageRetained) {
  Rng rng(3);
  std::vector<int64_t> vals(5000);
  for (auto& v : vals) v = rng.NextInRange(0, 255);
  const WaveletSynopsis w = BuildWavelet(vals, 5000.0, 32);
  // The overall-average coefficient dominates and is always retained for
  // uniform-ish data; total mass is then exact.
  EXPECT_NEAR(w.TotalFrequency(), 1.0, 1e-9);
  EXPECT_NEAR(w.RangeSelectivity(0, 255), 1.0, 0.02);
}

TEST(WaveletTest, BudgetRespected) {
  Rng rng(5);
  std::vector<int64_t> vals(10000);
  ZipfSampler z(512, 1.0);
  for (auto& v : vals) v = z.Next(rng);
  const WaveletSynopsis w = BuildWavelet(vals, 10000.0, 40);
  EXPECT_LE(w.num_coefficients(), 40u);
  EXPECT_GE(w.num_coefficients(), 1u);
}

TEST(WaveletTest, SmoothDataCompressesWell) {
  // A linear ramp has most energy in few coefficients: tiny budgets
  // already give good range estimates.
  std::vector<int64_t> vals;
  for (int64_t v = 0; v < 256; ++v) {
    for (int64_t k = 0; k <= v / 16; ++k) vals.push_back(v);
  }
  const double total = static_cast<double>(vals.size());
  const WaveletSynopsis w = BuildWavelet(vals, total, 12);
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 63}, {64, 127}, {128, 191}, {192, 255}, {100, 200}}) {
    EXPECT_NEAR(w.RangeSelectivity(lo, hi),
                ExactRangeSel(vals, total, lo, hi), 0.05)
        << lo << ".." << hi;
  }
}

TEST(WaveletTest, SkewedDataReasonableAtModestBudget) {
  Rng rng(9);
  std::vector<int64_t> vals(30000);
  ZipfSampler z(1024, 1.1);
  for (auto& v : vals) v = z.Next(rng);
  const WaveletSynopsis w = BuildWavelet(vals, 30000.0, 64);
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 7}, {0, 63}, {64, 511}, {512, 1023}}) {
    EXPECT_NEAR(w.RangeSelectivity(lo, hi),
                ExactRangeSel(vals, 30000.0, lo, hi), 0.08)
        << lo << ".." << hi;
  }
}

TEST(WaveletTest, WideDomainsGridCoarsens) {
  // Domain far wider than 1024 cells: the grid coarsens but estimates
  // stay sane.
  Rng rng(11);
  std::vector<int64_t> vals(10000);
  for (auto& v : vals) v = rng.NextInRange(0, 1000000);
  const WaveletSynopsis w = BuildWavelet(vals, 10000.0, 128);
  EXPECT_NEAR(w.RangeSelectivity(0, 500000),
              ExactRangeSel(vals, 10000.0, 0, 500000), 0.05);
}

TEST(WaveletTest, NullDilution) {
  // source_cardinality larger than the value count: mass < 1.
  const std::vector<int64_t> vals = {1, 2, 3, 4};
  const WaveletSynopsis w = BuildWavelet(vals, 8.0, 64);
  EXPECT_NEAR(w.RangeSelectivity(1, 4), 0.5, 1e-9);
}

}  // namespace
}  // namespace condsel
