// Tests for catalog / SIT-pool serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "condsel/exec/evaluator.h"
#include "condsel/io/serialize.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {
    catalog_.AddForeignKey({0, 1, 1, 0});
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
};

TEST_F(SerializeTest, CatalogRoundTrip) {
  const std::string path = TempPath("catalog.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);

  Catalog loaded;
  const IoResult r = ReadCatalog(path, &loaded);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(loaded.num_tables(), catalog_.num_tables());
  for (TableId t = 0; t < catalog_.num_tables(); ++t) {
    const Table& a = catalog_.table(t);
    const Table& b = loaded.table(t);
    EXPECT_EQ(a.schema().name, b.schema().name);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (ColumnId c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.schema().columns[static_cast<size_t>(c)].is_key,
                b.schema().columns[static_cast<size_t>(c)].is_key);
      EXPECT_EQ(a.column(c).values(), b.column(c).values());
    }
  }
  ASSERT_EQ(loaded.foreign_keys().size(), 1u);
  EXPECT_EQ(loaded.foreign_keys()[0].pk_table, 1);
}

TEST_F(SerializeTest, LoadedCatalogEvaluatesIdentically) {
  const std::string path = TempPath("catalog2.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  Catalog loaded;
  ASSERT_TRUE(ReadCatalog(path, &loaded).ok);

  const Query q({Predicate::Join({0, 1}, {1, 0}),
                 Predicate::Filter({0, 0}, 2, 7)});
  CardinalityCache cache2;
  Evaluator eval2(&loaded, &cache2);
  EXPECT_DOUBLE_EQ(eval2.Cardinality(q, q.all_predicates()),
                   eval_.Cardinality(q, q.all_predicates()));
}

TEST_F(SerializeTest, SitPoolRoundTrip) {
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  pool.Add(builder_.Build({0, 0}, {Predicate::Join({0, 1}, {1, 0})}));
  pool.Add(builder_.Build2d({0, 0}, {0, 1}, {}));

  const std::string path = TempPath("pool.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);

  SitPool loaded;
  const IoResult r = ReadSitPool(path, catalog_, &loaded);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(loaded.size(), pool.size());
  for (SitId i = 0; i < pool.size(); ++i) {
    const Sit& a = pool.sit(i);
    const Sit& b = loaded.sit(i);
    EXPECT_EQ(a.attr, b.attr);
    EXPECT_EQ(a.attr2, b.attr2);
    EXPECT_EQ(a.expression, b.expression);
    EXPECT_DOUBLE_EQ(a.diff, b.diff);
    if (a.is_multidim()) {
      EXPECT_EQ(a.histogram2d.num_buckets(), b.histogram2d.num_buckets());
      EXPECT_NEAR(a.histogram2d.RangeSelectivity(1, 5, 10, 30),
                  b.histogram2d.RangeSelectivity(1, 5, 10, 30), 1e-12);
    } else {
      EXPECT_EQ(a.histogram.num_buckets(), b.histogram.num_buckets());
      EXPECT_NEAR(a.histogram.RangeSelectivity(1, 5),
                  b.histogram.RangeSelectivity(1, 5), 1e-12);
    }
  }
}

TEST_F(SerializeTest, RejectsWrongMagic) {
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a condsel file at all", f);
  std::fclose(f);

  Catalog c;
  EXPECT_FALSE(ReadCatalog(path, &c).ok);
  SitPool p;
  EXPECT_FALSE(ReadSitPool(path, catalog_, &p).ok);
}

TEST_F(SerializeTest, RejectsCatalogAsPool) {
  const std::string path = TempPath("catalog3.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  SitPool p;
  const IoResult r = ReadSitPool(path, catalog_, &p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not a condsel SIT pool"), std::string::npos);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  const std::string path = TempPath("pool_trunc.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  SitPool p;
  EXPECT_FALSE(ReadSitPool(path, catalog_, &p).ok);
}

TEST_F(SerializeTest, RejectsPoolAgainstWrongCatalog) {
  // A SIT over table 2 cannot load into a 1-table catalog.
  SitPool pool;
  pool.Add(builder_.Build({2, 1}, {}));
  const std::string path = TempPath("pool_wrongcat.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);

  Catalog tiny;
  tiny.AddTable(test::MakeTable("only", {"c"}, {{1}}));
  SitPool p;
  const IoResult r = ReadSitPool(path, tiny, &p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("does not exist"), std::string::npos);
}

TEST_F(SerializeTest, MissingFileFailsGracefully) {
  Catalog c;
  const IoResult r = ReadCatalog(TempPath("does_not_exist.bin"), &c);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace condsel
