// Tests for catalog / SIT-pool serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "condsel/exec/evaluator.h"
#include "condsel/io/serialize.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {
    catalog_.AddForeignKey({0, 1, 1, 0});
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
};

TEST_F(SerializeTest, CatalogRoundTrip) {
  const std::string path = TempPath("catalog.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);

  Catalog loaded;
  const IoResult r = ReadCatalog(path, &loaded);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(loaded.num_tables(), catalog_.num_tables());
  for (TableId t = 0; t < catalog_.num_tables(); ++t) {
    const Table& a = catalog_.table(t);
    const Table& b = loaded.table(t);
    EXPECT_EQ(a.schema().name, b.schema().name);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (ColumnId c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.schema().columns[static_cast<size_t>(c)].is_key,
                b.schema().columns[static_cast<size_t>(c)].is_key);
      EXPECT_EQ(a.MaterializeColumn(c).values(),
                b.MaterializeColumn(c).values());
    }
  }
  ASSERT_EQ(loaded.foreign_keys().size(), 1u);
  EXPECT_EQ(loaded.foreign_keys()[0].pk_table, 1);
}

TEST_F(SerializeTest, LoadedCatalogEvaluatesIdentically) {
  const std::string path = TempPath("catalog2.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  Catalog loaded;
  ASSERT_TRUE(ReadCatalog(path, &loaded).ok);

  const Query q({Predicate::Join({0, 1}, {1, 0}),
                 Predicate::Filter({0, 0}, 2, 7)});
  CardinalityCache cache2;
  Evaluator eval2(&loaded, &cache2);
  EXPECT_DOUBLE_EQ(eval2.Cardinality(q, q.all_predicates()),
                   eval_.Cardinality(q, q.all_predicates()));
}

TEST_F(SerializeTest, SitPoolRoundTrip) {
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  pool.Add(builder_.Build({0, 0}, {Predicate::Join({0, 1}, {1, 0})}));
  pool.Add(builder_.Build2d({0, 0}, {0, 1}, {}));

  const std::string path = TempPath("pool.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);

  SitPool loaded;
  const IoResult r = ReadSitPool(path, catalog_, &loaded);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(loaded.size(), pool.size());
  for (SitId i = 0; i < pool.size(); ++i) {
    const Sit& a = pool.sit(i);
    const Sit& b = loaded.sit(i);
    EXPECT_EQ(a.attr, b.attr);
    EXPECT_EQ(a.attr2, b.attr2);
    EXPECT_EQ(a.expression, b.expression);
    EXPECT_DOUBLE_EQ(a.diff, b.diff);
    if (a.is_multidim()) {
      EXPECT_EQ(a.histogram2d.num_buckets(), b.histogram2d.num_buckets());
      EXPECT_NEAR(a.histogram2d.RangeSelectivity(1, 5, 10, 30),
                  b.histogram2d.RangeSelectivity(1, 5, 10, 30), 1e-12);
    } else {
      EXPECT_EQ(a.histogram.num_buckets(), b.histogram.num_buckets());
      EXPECT_NEAR(a.histogram.RangeSelectivity(1, 5),
                  b.histogram.RangeSelectivity(1, 5), 1e-12);
    }
  }
}

TEST_F(SerializeTest, RejectsWrongMagic) {
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a condsel file at all", f);
  std::fclose(f);

  Catalog c;
  EXPECT_FALSE(ReadCatalog(path, &c).ok);
  SitPool p;
  EXPECT_FALSE(ReadSitPool(path, catalog_, &p).ok);
}

TEST_F(SerializeTest, RejectsCatalogAsPool) {
  const std::string path = TempPath("catalog3.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  SitPool p;
  const IoResult r = ReadSitPool(path, catalog_, &p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not a condsel SIT pool"), std::string::npos);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  const std::string path = TempPath("pool_trunc.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  SitPool p;
  EXPECT_FALSE(ReadSitPool(path, catalog_, &p).ok);
}

TEST_F(SerializeTest, RejectsPoolAgainstWrongCatalog) {
  // A SIT over table 2 cannot load into a 1-table catalog.
  SitPool pool;
  pool.Add(builder_.Build({2, 1}, {}));
  const std::string path = TempPath("pool_wrongcat.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);

  Catalog tiny;
  tiny.AddTable(test::MakeTable("only", {"c"}, {{1}}));
  SitPool p;
  const IoResult r = ReadSitPool(path, tiny, &p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("does not exist"), std::string::npos);
}

TEST_F(SerializeTest, MissingFileFailsGracefully) {
  Catalog c;
  const IoResult r = ReadCatalog(TempPath("does_not_exist.bin"), &c);
  EXPECT_FALSE(r.ok);
}

namespace {

std::vector<unsigned char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path,
              const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {  // fwrite(nullptr, ...) is UB even for size 0
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

}  // namespace

TEST_F(SerializeTest, TruncationAtEveryOffsetFailsCleanly) {
  // Cutting the file at any byte must yield a clean IoResult failure —
  // never an abort, a crash, or a silently short catalog/pool.
  const std::string cat_path = TempPath("cat_full.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, cat_path).ok);
  const std::vector<unsigned char> cat_bytes = ReadAll(cat_path);

  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  pool.Add(builder_.Build2d({0, 0}, {0, 1}, {}));
  const std::string pool_path = TempPath("pool_full.bin");
  ASSERT_TRUE(WriteSitPool(pool, pool_path).ok);
  const std::vector<unsigned char> pool_bytes = ReadAll(pool_path);

  const std::string cut = TempPath("cut.bin");
  for (size_t n = 0; n < cat_bytes.size(); ++n) {
    WriteAll(cut, {cat_bytes.begin(), cat_bytes.begin() + n});
    Catalog c;
    EXPECT_FALSE(ReadCatalog(cut, &c).ok) << "truncated at " << n;
  }
  for (size_t n = 0; n < pool_bytes.size(); ++n) {
    WriteAll(cut, {pool_bytes.begin(), pool_bytes.begin() + n});
    SitPool p;
    EXPECT_FALSE(ReadSitPool(cut, catalog_, &p).ok) << "truncated at " << n;
  }
}

TEST_F(SerializeTest, FlippedBytesNeverCrash) {
  // Flip every byte of a valid pool file in turn (0xFF xor). Loads may
  // legitimately succeed when the byte is a don't-care (e.g. a histogram
  // payload double), but must never abort or hand back garbage sizes.
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  pool.Add(builder_.Build({0, 0}, {Predicate::Join({0, 1}, {1, 0})}));
  const std::string path = TempPath("pool_flip.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);
  const std::vector<unsigned char> bytes = ReadAll(path);

  const std::string flipped = TempPath("flipped.bin");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<unsigned char> mutated = bytes;
    mutated[i] ^= 0xFF;
    WriteAll(flipped, mutated);
    SitPool p;
    const IoResult r = ReadSitPool(flipped, catalog_, &p);
    if (r.ok) {
      EXPECT_LE(p.size(), pool.size() + 1) << "byte " << i;
    } else {
      EXPECT_FALSE(r.error.empty()) << "byte " << i;
    }
  }
}

TEST_F(SerializeTest, FlippedCatalogBytesNeverCrash) {
  // Same byte-flip sweep over a catalog file: notably exercises the
  // foreign-key table-id validation (formerly a CHECK-abort in
  // Catalog::AddForeignKey on out-of-range ids).
  const std::string path = TempPath("cat_flip.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  const std::vector<unsigned char> bytes = ReadAll(path);
  const std::string flipped = TempPath("cat_flipped.bin");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<unsigned char> mutated = bytes;
    mutated[i] ^= 0xFF;
    WriteAll(flipped, mutated);
    Catalog c;
    const IoResult r = ReadCatalog(flipped, &c);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "byte " << i;
    }
  }
}

TEST_F(SerializeTest, RejectsFlippedVersion) {
  const std::string path = TempPath("cat_ver.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  bytes[4] ^= 0xFF;  // version lives right after the 4-byte magic
  WriteAll(path, bytes);
  Catalog c;
  const IoResult r = ReadCatalog(path, &c);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("version"), std::string::npos);
}

TEST_F(SerializeTest, RejectsOutOfRangeCounts) {
  // Patch the table count (offset 8) to a huge value: the reader must
  // reject it against the actual file size instead of looping or
  // allocating.
  const std::string path = TempPath("cat_counts.bin");
  ASSERT_TRUE(WriteCatalog(catalog_, path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  std::vector<unsigned char> patched = bytes;
  patched[8] = 0xFF;
  patched[9] = 0xFF;
  patched[10] = 0xFF;
  patched[11] = 0x7F;
  WriteAll(path, patched);
  Catalog c;
  EXPECT_FALSE(ReadCatalog(path, &c).ok);

  // Patch the first table's first column-vector length similarly: the
  // element count must be validated against the remaining bytes before
  // any allocation happens (a corrupt 2^32 count used to be accepted).
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  const std::string pool_path = TempPath("pool_counts.bin");
  ASSERT_TRUE(WriteSitPool(pool, pool_path).ok);
  std::vector<unsigned char> pb = ReadAll(pool_path);
  // Bucket count is a u64 at offset 12 (magic, version, sit count) + 12
  // (attr, multidim flag) + 4 (expression size) + 8 (diff) + 8 (card).
  const size_t bucket_count_at = 12 + 12 + 4 + 8 + 8;
  ASSERT_LT(bucket_count_at + 8, pb.size());
  for (int b = 0; b < 8; ++b) pb[bucket_count_at + b] = 0x22;
  WriteAll(pool_path, pb);
  SitPool p;
  const IoResult r = ReadSitPool(pool_path, catalog_, &p);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("histogram"), std::string::npos);
}

TEST_F(SerializeTest, RejectsMismatchedColumnLengths) {
  // Shrink one column's length header so the columns of a table disagree:
  // formerly a CHECK-abort in Table::SealRows, now a clean failure. The
  // byte layout: the length u64 precedes each column vector; we rewrite
  // the file with a one-shorter first column instead of hand-patching
  // offsets.
  Catalog one;
  one.AddTable(test::MakeTable("U", {"p", "q"}, {{1, 2}, {3, 4}}));
  const std::string path = TempPath("cat_mismatch.bin");
  ASSERT_TRUE(WriteCatalog(one, path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  // Find the first column vector: it serializes as u64 length 2 followed
  // by int64 values 1, 3. Patch the length to 1 and delete 8 value bytes.
  const std::vector<unsigned char> needle = {2, 0, 0, 0, 0, 0, 0, 0,
                                             1, 0, 0, 0, 0, 0, 0, 0,
                                             3, 0, 0, 0, 0, 0, 0, 0};
  auto it = std::search(bytes.begin(), bytes.end(), needle.begin(),
                        needle.end());
  ASSERT_NE(it, bytes.end());
  *it = 1;  // length 2 -> 1
  bytes.erase(it + 8, it + 16);  // drop the first value's bytes
  WriteAll(path, bytes);
  Catalog c;
  const IoResult r = ReadCatalog(path, &c);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("column lengths disagree"), std::string::npos);
}

TEST_F(SerializeTest, RejectsNaNHistogramPayload) {
  // A NaN bucket frequency passes naive `< 0` validation and then aborts
  // in the Histogram constructor; the reader must reject it instead.
  SitPool pool;
  pool.Add(builder_.Build({0, 0}, {}));
  const std::string path = TempPath("pool_nan.bin");
  ASSERT_TRUE(WriteSitPool(pool, path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  // First bucket layout: lo i64, hi i64, frequency f64, distinct f64,
  // starting right after the u64 bucket count (see RejectsOutOfRangeCounts
  // for the offset arithmetic).
  const size_t freq_at = (12 + 12 + 4 + 8 + 8) + 8 + 16;
  ASSERT_LT(freq_at + 8, bytes.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&bytes[freq_at], &nan, sizeof(nan));
  WriteAll(path, bytes);
  SitPool p;
  const IoResult r = ReadSitPool(path, catalog_, &p);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("histogram"), std::string::npos);
}

class PartStatsSerializeTest : public SerializeTest {
 protected:
  PartStatsSerializeTest()
      : workload_({Query({Predicate::Join({0, 1}, {1, 0}),
                          Predicate::Filter({0, 0}, 1, 5)})}),
        maintainer_(&catalog_, workload_, 1, {HistogramType::kMaxDiff, 64}) {
    EXPECT_TRUE(maintainer_.BuildAll().ok());
  }

  // Wire layout of the image this fixture writes (see WritePartStats):
  // magic + version + spec count (12), then 4 specs — three base specs
  // (12 bytes each) and one with a single join predicate (12 + 20) — then
  // the entry count (4) and the entries in (table, part) order. The first
  // entry is R's: header 4 + 4 + 8, rows f64, piece count u32, then the
  // first piece (base R.a) starting with its source-cardinality f64.
  static constexpr size_t kFirstEntryRowsAt = 12 + (3 * 12 + 32) + 4 + 16;
  static constexpr size_t kFirstPieceCountAt = kFirstEntryRowsAt + 8;
  static constexpr size_t kFirstPieceCardinalityAt = kFirstPieceCountAt + 4;

  std::vector<Query> workload_;
  PartStatsMaintainer maintainer_;
};

TEST_F(PartStatsSerializeTest, RoundTrip) {
  const std::string path = TempPath("part_stats.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  PartStatsSet loaded;
  const IoResult r = ReadPartStats(path, catalog_, &loaded);
  ASSERT_TRUE(r.ok) << r.error;

  EXPECT_EQ(loaded.specs(), maintainer_.stats().specs());
  ASSERT_EQ(loaded.entries().size(), maintainer_.stats().entries().size());
  for (const auto& [key, want] : maintainer_.stats().entries()) {
    const PartStatsEntry* got = loaded.FindEntry(key.first, key.second);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->generation, want.generation);
    EXPECT_EQ(got->rows, want.rows);
    EXPECT_EQ(got->diffs, want.diffs);
    ASSERT_EQ(got->pieces.size(), want.pieces.size());
    for (size_t i = 0; i < want.pieces.size(); ++i) {
      EXPECT_EQ(got->pieces[i].source_cardinality(),
                want.pieces[i].source_cardinality());
      ASSERT_EQ(got->pieces[i].num_buckets(), want.pieces[i].num_buckets());
      for (size_t b = 0; b < want.pieces[i].num_buckets(); ++b) {
        EXPECT_EQ(got->pieces[i].buckets()[b].frequency,
                  want.pieces[i].buckets()[b].frequency);
      }
    }
  }
  // The loaded set is immediately servable.
  EXPECT_TRUE(loaded.Audit(catalog_).ok());
  EXPECT_TRUE(loaded.BuildMergedPool(catalog_, 64).ok());
}

TEST_F(PartStatsSerializeTest, TruncationAtEveryOffsetFailsCleanly) {
  const std::string path = TempPath("part_stats_full.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  const std::vector<unsigned char> bytes = ReadAll(path);
  const std::string cut = TempPath("part_stats_cut.bin");
  for (size_t n = 0; n < bytes.size(); ++n) {
    WriteAll(cut, {bytes.begin(), bytes.begin() + n});
    PartStatsSet s;
    const IoResult r = ReadPartStats(cut, catalog_, &s);
    EXPECT_FALSE(r.ok) << "truncated at " << n;
    EXPECT_FALSE(r.error.empty()) << "truncated at " << n;
  }
}

TEST_F(PartStatsSerializeTest, RejectsNaNPieceCardinality) {
  // NaN survives the Histogram constructor's bucket checks (it only
  // CHECKs frequencies), so the reader must reject it by value — this is
  // the serialized twin of the kCorruptPartStats fault.
  const std::string path = TempPath("part_stats_nan.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  ASSERT_LT(kFirstPieceCardinalityAt + 8, bytes.size());
  // Guard the offset arithmetic: both fields should read 10.0 (R has 10
  // rows; the first piece is R.a's base histogram over those rows).
  double probe = 0.0;
  std::memcpy(&probe, &bytes[kFirstEntryRowsAt], sizeof(probe));
  ASSERT_EQ(probe, 10.0);
  std::memcpy(&probe, &bytes[kFirstPieceCardinalityAt], sizeof(probe));
  ASSERT_EQ(probe, 10.0);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&bytes[kFirstPieceCardinalityAt], &nan, sizeof(nan));
  WriteAll(path, bytes);
  PartStatsSet s;
  const IoResult r = ReadPartStats(path, catalog_, &s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cardinality"), std::string::npos) << r.error;

  // A NaN row count is rejected the same way.
  bytes = ReadAll(TempPath("part_stats_nan.bin"));
  std::memcpy(&bytes[kFirstEntryRowsAt], &nan, sizeof(nan));
  WriteAll(path, bytes);
  EXPECT_FALSE(ReadPartStats(path, catalog_, &s).ok);
}

TEST_F(PartStatsSerializeTest, RejectsMisalignedPieceVector) {
  const std::string path = TempPath("part_stats_misaligned.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  std::vector<unsigned char> bytes = ReadAll(path);
  // R owns three specs; claim two so the vector no longer aligns with
  // SpecsOwnedBy.
  ASSERT_EQ(bytes[kFirstPieceCountAt], 3u);
  bytes[kFirstPieceCountAt] = 2;
  WriteAll(path, bytes);
  PartStatsSet s;
  const IoResult r = ReadPartStats(path, catalog_, &s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("disagree"), std::string::npos) << r.error;
}

TEST_F(PartStatsSerializeTest, RejectsStaleGenerationAfterDelta) {
  // Statistics written before a data change must not load against the
  // mutated catalog: the rewritten part carries a newer generation than
  // the entry's stamp.
  const std::string path = TempPath("part_stats_stale.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  catalog_.mutable_table(0).DeleteRows({0});
  PartStatsSet s;
  const IoResult r = ReadPartStats(path, catalog_, &s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stale"), std::string::npos) << r.error;
}

TEST_F(PartStatsSerializeTest, FlippedBytesNeverCrash) {
  // Flip every byte in turn: loads may succeed when the byte is a
  // don't-care, but anything accepted must satisfy the same invariants
  // the fuzz harness enforces.
  const std::string path = TempPath("part_stats_flip_base.bin");
  ASSERT_TRUE(WritePartStats(maintainer_.stats(), path).ok);
  const std::vector<unsigned char> bytes = ReadAll(path);
  const std::string flipped = TempPath("part_stats_flipped.bin");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<unsigned char> mutated = bytes;
    mutated[i] ^= 0xFF;
    WriteAll(flipped, mutated);
    PartStatsSet s;
    const IoResult r = ReadPartStats(flipped, catalog_, &s);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "byte " << i;
      continue;
    }
    for (const auto& [key, entry] : s.entries()) {
      const Table& table = catalog_.table(entry.table);
      const int pi = table.part_index(entry.part);
      ASSERT_GE(pi, 0) << "byte " << i;
      EXPECT_EQ(entry.generation,
                table.part(static_cast<size_t>(pi)).generation())
          << "byte " << i;
      EXPECT_EQ(entry.pieces.size(), s.SpecsOwnedBy(entry.table).size())
          << "byte " << i;
    }
  }
}

TEST_F(SerializeTest, IoStatusLiftsResultsIntoStatusVocabulary) {
  EXPECT_TRUE(IoStatus(IoResult::Ok()).ok());
  const Status failed = IoStatus(IoResult::Fail("bad magic"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kDataLoss);
  EXPECT_NE(failed.ToString().find("bad magic"), std::string::npos);
}

}  // namespace
}  // namespace condsel
