// End-to-end integration test on a miniature snowflake database:
// reproduces the paper's qualitative results at test scale.

#include <gtest/gtest.h>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SnowflakeOptions opt;
    opt.scale = 0.004;
    opt.zipf_theta = 1.0;
    catalog_ = new Catalog(BuildSnowflake(opt));
    cache_ = new CardinalityCache();
    eval_ = new Evaluator(catalog_, cache_);

    WorkloadOptions wopt;
    wopt.num_queries = 6;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    workload_ = new std::vector<Query>(
        GenerateWorkload(*catalog_, eval_, wopt));

    SitBuilder builder(eval_, {HistogramType::kMaxDiff, 100});
    pools_ = new std::vector<SitPool>();
    for (int j = 0; j <= 3; ++j) {
      pools_->push_back(GenerateSitPool(*workload_, j, builder));
    }
  }

  static void TearDownTestSuite() {
    delete pools_;
    delete workload_;
    delete eval_;
    delete cache_;
    delete catalog_;
  }

  static Catalog* catalog_;
  static CardinalityCache* cache_;
  static Evaluator* eval_;
  static std::vector<Query>* workload_;
  static std::vector<SitPool>* pools_;
};

Catalog* IntegrationTest::catalog_ = nullptr;
CardinalityCache* IntegrationTest::cache_ = nullptr;
Evaluator* IntegrationTest::eval_ = nullptr;
std::vector<Query>* IntegrationTest::workload_ = nullptr;
std::vector<SitPool>* IntegrationTest::pools_ = nullptr;

TEST_F(IntegrationTest, PoolSizesGrow) {
  for (size_t j = 1; j < pools_->size(); ++j) {
    EXPECT_GE((*pools_)[j].size(), (*pools_)[j - 1].size());
  }
  EXPECT_GT(pools_->back().size(), pools_->front().size());
}

TEST_F(IntegrationTest, RicherPoolsReduceGsError) {
  Runner runner(catalog_, eval_);
  double prev = kInfiniteError;
  for (size_t j = 0; j < pools_->size(); ++j) {
    const double err =
        runner.Run(*workload_, (*pools_)[j], Technique::kGsDiff)
            .avg_abs_error;
    // Allow tiny non-monotonic noise; the overall trend must be down.
    if (j > 0) {
      EXPECT_LE(err, prev * 1.25) << "J" << j;
    }
    prev = err;
  }
  const double err_j0 =
      runner.Run(*workload_, pools_->front(), Technique::kGsDiff)
          .avg_abs_error;
  const double err_j3 =
      runner.Run(*workload_, pools_->back(), Technique::kGsDiff)
          .avg_abs_error;
  EXPECT_LT(err_j3, err_j0);
}

TEST_F(IntegrationTest, TechniqueOrderingAtFullPool) {
  Runner runner(catalog_, eval_);
  const SitPool& pool = pools_->back();
  const double no_sit =
      runner.Run(*workload_, pool, Technique::kNoSit).avg_abs_error;
  const double gs_n_ind =
      runner.Run(*workload_, pool, Technique::kGsNInd).avg_abs_error;
  const double gs_opt =
      runner.Run(*workload_, pool, Technique::kGsOpt).avg_abs_error;
  // The paper's headline ordering (Fig. 7): GS-Opt <= GS-* << noSit.
  EXPECT_LE(gs_opt, gs_n_ind + 1e-9);
  EXPECT_LT(gs_opt, no_sit);
  EXPECT_LT(gs_n_ind, no_sit);
}

TEST_F(IntegrationTest, GsDiffBeatsOrTiesGvmPerQuery) {
  // Figure 5's shape: every point lies on or below the x = y line, with
  // strict wins. The J_1 pool is where GVM's view-matching constraint
  // binds: filters on different dimensions hold SITs whose expressions
  // overlap on the fact table without nesting (the Figure 1 conflict),
  // so GVM must drop one while getSelectivity uses both in separate
  // factors. (We assert this for GS-Diff; GS-nInd's syntactic ranking can
  // occasionally prefer a worse decomposition on sparse pools — exactly
  // the weakness Section 3.5 motivates Diff with. See EXPERIMENTS.md.)
  Runner runner(catalog_, eval_);
  const SitPool& pool = (*pools_)[1];
  const WorkloadRunResult gvm =
      runner.Run(*workload_, pool, Technique::kGvm);
  const WorkloadRunResult gs =
      runner.Run(*workload_, pool, Technique::kGsDiff);
  ASSERT_EQ(gvm.per_query.size(), gs.per_query.size());
  int strictly_better = 0;
  for (size_t i = 0; i < gs.per_query.size(); ++i) {
    EXPECT_LE(gs.per_query[i].avg_abs_error,
              gvm.per_query[i].avg_abs_error * 1.05 + 1e-6)
        << "query " << i;
    strictly_better += gs.per_query[i].avg_abs_error <
                       gvm.per_query[i].avg_abs_error - 1e-9;
  }
  EXPECT_GT(strictly_better, 0);
}

TEST_F(IntegrationTest, GsDiffTracksOracleClosely) {
  // Figure 7's second headline: GS-Diff is "very close to the optimal
  // strategy GS-Opt".
  Runner runner(catalog_, eval_);
  for (size_t j = 1; j < pools_->size(); ++j) {
    const double diff =
        runner.Run(*workload_, (*pools_)[j], Technique::kGsDiff)
            .avg_abs_error;
    const double opt =
        runner.Run(*workload_, (*pools_)[j], Technique::kGsOpt)
            .avg_abs_error;
    EXPECT_LE(diff, opt * 1.5 + 1.0) << "J" << j;
    EXPECT_GE(diff, opt - 1e-9) << "J" << j;
  }
}

TEST_F(IntegrationTest, SitsBeatBaseStatisticsClearly) {
  // The motivating effect: with skewed FKs and correlated attributes,
  // base statistics mis-estimate sub-plans badly; SIT-aware estimation
  // must cut the average absolute error substantially.
  Runner runner(catalog_, eval_);
  const double no_sit =
      runner.Run(*workload_, pools_->back(), Technique::kNoSit)
          .avg_abs_error;
  const double gs_diff =
      runner.Run(*workload_, pools_->back(), Technique::kGsDiff)
          .avg_abs_error;
  EXPECT_LT(gs_diff, 0.8 * no_sit);
}

}  // namespace
}  // namespace condsel
