// Tests for the histogram equi-join of Section 3.3.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/histogram_join.h"

namespace condsel {
namespace {

// Exact Sel(x=y) over the cross product of two multisets.
double ExactJoinSel(const std::vector<int64_t>& a,
                    const std::vector<int64_t>& b) {
  double matches = 0.0;
  for (int64_t x : a) {
    for (int64_t y : b) matches += (x == y);
  }
  return matches / (static_cast<double>(a.size()) *
                    static_cast<double>(b.size()));
}

TEST(HistogramJoinTest, EmptyInputsYieldZero) {
  const Histogram h1 = BuildMaxDiff({1, 2}, 2.0, 4);
  const Histogram empty = BuildMaxDiff({}, 0.0, 4);
  EXPECT_DOUBLE_EQ(JoinHistograms(h1, empty).selectivity, 0.0);
  EXPECT_DOUBLE_EQ(JoinHistograms(empty, h1).selectivity, 0.0);
}

TEST(HistogramJoinTest, DisjointDomainsYieldZero) {
  const Histogram h1 = BuildMaxDiff({1, 2, 3}, 3.0, 8);
  const Histogram h2 = BuildMaxDiff({10, 11, 12}, 3.0, 8);
  EXPECT_DOUBLE_EQ(JoinHistograms(h1, h2).selectivity, 0.0);
}

TEST(HistogramJoinTest, ExactOnPerValueBuckets) {
  // With one bucket per distinct value, the join estimate is exact.
  const std::vector<int64_t> a = {1, 1, 2, 3, 3, 3};
  const std::vector<int64_t> b = {1, 3, 3, 5};
  const Histogram h1 = BuildMaxDiff(a, 6.0, 64);
  const Histogram h2 = BuildMaxDiff(b, 4.0, 64);
  const JoinEstimate je = JoinHistograms(h1, h2);
  EXPECT_NEAR(je.selectivity, ExactJoinSel(a, b), 1e-12);
}

TEST(HistogramJoinTest, SymmetricSelectivity) {
  Rng rng(17);
  std::vector<int64_t> a(2000), b(1500);
  for (auto& v : a) v = rng.NextInRange(0, 99);
  for (auto& v : b) v = rng.NextInRange(0, 99);
  const Histogram h1 = BuildMaxDiff(a, 2000.0, 30);
  const Histogram h2 = BuildMaxDiff(b, 1500.0, 30);
  EXPECT_NEAR(JoinHistograms(h1, h2).selectivity,
              JoinHistograms(h2, h1).selectivity, 1e-12);
}

TEST(HistogramJoinTest, PkFkJoinAccuracy) {
  // Primary key side: each of 0..999 once. FK side: Zipf draws. True
  // selectivity of pk=fk is 1/1000 exactly (every FK value matches one
  // pk).
  std::vector<int64_t> pk(1000);
  for (size_t i = 0; i < pk.size(); ++i) pk[i] = static_cast<int64_t>(i);
  Rng rng(23);
  ZipfSampler z(1000, 1.0);
  std::vector<int64_t> fk(20000);
  for (auto& v : fk) v = z.Next(rng);
  const Histogram hp = BuildMaxDiff(pk, 1000.0, 200);
  const Histogram hf = BuildMaxDiff(fk, 20000.0, 200);
  const JoinEstimate je = JoinHistograms(hp, hf);
  EXPECT_NEAR(je.selectivity, 1.0 / 1000.0, 2e-4);
}

TEST(HistogramJoinTest, ResultHistogramNormalized) {
  const std::vector<int64_t> a = {1, 1, 2, 3, 3, 3};
  const std::vector<int64_t> b = {1, 3, 3, 5};
  const JoinEstimate je = JoinHistograms(BuildMaxDiff(a, 6.0, 64),
                                         BuildMaxDiff(b, 4.0, 64));
  EXPECT_NEAR(je.result.total_frequency(), 1.0, 1e-12);
  // Exact result distribution: matches at 1 (2*1=2 tuples) and 3 (3*2=6):
  // P(1) = 0.25, P(3) = 0.75.
  EXPECT_NEAR(je.result.RangeSelectivity(1, 1), 0.25, 1e-12);
  EXPECT_NEAR(je.result.RangeSelectivity(3, 3), 0.75, 1e-12);
  // Estimated join cardinality: sel * |A| * |B| = (8/24) * 24 = 8.
  EXPECT_NEAR(je.result.source_cardinality(), 8.0, 1e-9);
}

TEST(HistogramJoinTest, ResultHistogramEstimatesPostJoinFilter) {
  // Example 3's pattern: estimate x=y, then a range over the join attr.
  Rng rng(31);
  std::vector<int64_t> a(5000), b(5000);
  ZipfSampler z(200, 1.0);
  for (auto& v : a) v = z.Next(rng);
  for (auto& v : b) v = rng.NextInRange(0, 199);
  const JoinEstimate je = JoinHistograms(BuildMaxDiff(a, 5000.0, 200),
                                         BuildMaxDiff(b, 5000.0, 200));
  // Exact: count matches with value <= 9 over all matches.
  double all = 0.0, low = 0.0;
  std::vector<double> ca(200, 0), cb(200, 0);
  for (int64_t v : a) ++ca[static_cast<size_t>(v)];
  for (int64_t v : b) ++cb[static_cast<size_t>(v)];
  for (size_t v = 0; v < 200; ++v) {
    all += ca[v] * cb[v];
    if (v <= 9) low += ca[v] * cb[v];
  }
  EXPECT_NEAR(je.result.RangeSelectivity(0, 9), low / all, 0.03);
}

TEST(HistogramJoinTest, UniformUniformMatchesAnalyticValue) {
  // Two uniform columns over the same domain D: Sel(x=y) ~ 1/|D|.
  Rng rng(41);
  std::vector<int64_t> a(10000), b(10000);
  for (auto& v : a) v = rng.NextInRange(0, 499);
  for (auto& v : b) v = rng.NextInRange(0, 499);
  const JoinEstimate je = JoinHistograms(BuildMaxDiff(a, 10000.0, 50),
                                         BuildMaxDiff(b, 10000.0, 50));
  EXPECT_NEAR(je.selectivity, 1.0 / 500.0, 3e-4);
}

}  // namespace
}  // namespace condsel
