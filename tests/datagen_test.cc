// Tests for the data generators: column primitives, snowflake, TPC-H-lite.

#include <gtest/gtest.h>

#include <map>

#include "condsel/datagen/column_gen.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/tpch_lite.h"
#include "condsel/exec/evaluator.h"
#include "condsel/storage/column.h"

namespace condsel {
namespace {

TEST(ColumnGenTest, UniformStaysInDomain) {
  Rng rng(1);
  const auto v = GenUniform(rng, 5000, 10, 20);
  for (int64_t x : v) {
    EXPECT_GE(x, 10);
    EXPECT_LE(x, 20);
  }
}

TEST(ColumnGenTest, ZipfSkewsLow) {
  Rng rng(2);
  const auto v = GenZipf(rng, 20000, 0, 99, 1.2);
  std::map<int64_t, int> counts;
  for (int64_t x : v) ++counts[x];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ColumnGenTest, CorrelatedTracksDriver) {
  Rng rng(3);
  std::vector<int64_t> driver(5000);
  for (auto& d : driver) d = rng.NextInRange(0, 999);
  const auto v = GenCorrelated(rng, driver, 0, 99, 0.02);
  // Crude correlation check: driver below median -> value mostly below
  // median.
  int agree = 0;
  for (size_t i = 0; i < driver.size(); ++i) {
    agree += ((driver[i] < 500) == (v[i] < 50));
  }
  EXPECT_GT(agree, 4500);
}

TEST(ColumnGenTest, CorrelatedHandlesNullDriver) {
  Rng rng(4);
  std::vector<int64_t> driver = {kNullValue, 5, kNullValue, 9};
  const auto v = GenCorrelated(rng, driver, 0, 99, 0.0);
  for (int64_t x : v) {
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 99);
  }
}

TEST(ColumnGenTest, DanglingRandomFraction) {
  Rng rng(5);
  std::vector<int64_t> fk(10000, 7);
  InjectDangling(rng, fk, 0.15, nullptr);
  size_t nulls = 0;
  for (int64_t x : fk) nulls += IsNull(x);
  EXPECT_EQ(nulls, 1500u);
}

TEST(ColumnGenTest, DanglingCorrelatedTargetsLargeValues) {
  Rng rng(6);
  std::vector<int64_t> fk(1000, 1);
  std::vector<int64_t> attr(1000);
  for (size_t i = 0; i < attr.size(); ++i) {
    attr[i] = static_cast<int64_t>(i);
  }
  InjectDangling(rng, fk, 0.1, &attr);
  // Exactly the rows with the 100 largest attr values are NULLed.
  for (size_t i = 0; i < 900; ++i) EXPECT_FALSE(IsNull(fk[i]));
  for (size_t i = 900; i < 1000; ++i) EXPECT_TRUE(IsNull(fk[i]));
}

TEST(SnowflakeTest, SchemaShape) {
  SnowflakeOptions opt;
  opt.scale = 0.002;  // tiny for tests
  const Catalog c = BuildSnowflake(opt);
  EXPECT_EQ(c.num_tables(), 8);
  EXPECT_EQ(c.foreign_keys().size(), 7u);  // supports 7-way joins
  // 4..8 attributes per table, as in the paper.
  for (TableId t = 0; t < c.num_tables(); ++t) {
    EXPECT_GE(c.table(t).num_columns(), 4);
    EXPECT_LE(c.table(t).num_columns(), 8);
    EXPECT_GT(c.table(t).num_rows(), 0u);
  }
  // Fact table is the largest.
  const TableId fact = c.FindTable("fact");
  ASSERT_NE(fact, kInvalidTableId);
  for (TableId t = 0; t < c.num_tables(); ++t) {
    EXPECT_LE(c.table(t).num_rows(), c.table(fact).num_rows());
  }
}

TEST(SnowflakeTest, ForeignKeysMostlyResolve) {
  SnowflakeOptions opt;
  opt.scale = 0.002;
  opt.dangling_fraction = 0.1;
  const Catalog c = BuildSnowflake(opt);
  // fact.fk_d2 has dangling NULLs; fact.fk_d1 does not.
  const Table& fact = c.table(c.FindTable("fact"));
  EXPECT_EQ(fact.MaterializeColumn(0).CountNonNull(), fact.num_rows());
  const size_t non_null_d2 = fact.MaterializeColumn(1).CountNonNull();
  EXPECT_NEAR(static_cast<double>(non_null_d2),
              0.9 * static_cast<double>(fact.num_rows()),
              static_cast<double>(fact.num_rows()) * 0.02);
}

TEST(SnowflakeTest, FkSkewProducesJoinMultiplicitySkew) {
  SnowflakeOptions opt;
  opt.scale = 0.002;
  opt.zipf_theta = 1.0;
  const Catalog c = BuildSnowflake(opt);
  const Table& fact = c.table(c.FindTable("fact"));
  std::map<int64_t, int> counts;
  for (int64_t v : fact.MaterializeColumn(0).values()) ++counts[v];
  // Dimension row 0 must be referenced far more often than the median row.
  const Table& dim1 = c.table(c.FindTable("dim1"));
  const int64_t mid = static_cast<int64_t>(dim1.num_rows() / 2);
  EXPECT_GT(counts[0], std::max(1, counts[mid]) * 5);
}

TEST(SnowflakeTest, DeterministicForSeed) {
  SnowflakeOptions opt;
  opt.scale = 0.002;
  const Catalog a = BuildSnowflake(opt);
  const Catalog b = BuildSnowflake(opt);
  const Table& ta = a.table(0);
  const Table& tb = b.table(0);
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (size_t r = 0; r < std::min<size_t>(ta.num_rows(), 100); ++r) {
    EXPECT_EQ(ta.value(r, 0), tb.value(r, 0));
  }
}

TEST(SnowflakeTest, ScaleFromEnvOverride) {
  setenv("CONDSEL_SCALE", "0.005", 1);
  const SnowflakeOptions opt = SnowflakeOptionsFromEnv();
  EXPECT_DOUBLE_EQ(opt.scale, 0.005);
  unsetenv("CONDSEL_SCALE");
  const SnowflakeOptions def = SnowflakeOptionsFromEnv();
  EXPECT_DOUBLE_EQ(def.scale, 0.1);
}

TEST(TpchLiteTest, SchemaAndFks) {
  TpchLiteOptions opt;
  opt.scale = 0.01;
  const Catalog c = BuildTpchLite(opt);
  EXPECT_EQ(c.num_tables(), 3);
  EXPECT_EQ(c.foreign_keys().size(), 2u);
  EXPECT_NE(c.FindTable("customer"), kInvalidTableId);
  EXPECT_NE(c.FindTable("orders"), kInvalidTableId);
  EXPECT_NE(c.FindTable("lineitem"), kInvalidTableId);
  EXPECT_GT(c.table(c.FindTable("lineitem")).num_rows(),
            c.table(c.FindTable("orders")).num_rows());
}

TEST(TpchLiteTest, NationSkew) {
  TpchLiteOptions opt;
  opt.scale = 0.1;  // ~1500 customers: enough to bound sampling noise
  opt.usa_fraction = 0.7;
  const Catalog c = BuildTpchLite(opt);
  const Table& cust = c.table(c.FindTable("customer"));
  const ColumnId nation = cust.schema().FindColumn("c_nation");
  size_t usa = 0;
  for (int64_t v : cust.MaterializeColumn(nation).values()) usa += (v == 0);
  EXPECT_NEAR(static_cast<double>(usa) / static_cast<double>(cust.num_rows()),
              0.7, 0.05);
}

TEST(TpchLiteTest, ExpensiveOrdersHaveManyLineItems) {
  // The paper's motivating skew: line-items per order correlates with
  // o_totalprice, so Sel(totalprice > c | lineitem join orders) is much
  // larger than Sel(totalprice > c) on the base table.
  TpchLiteOptions opt;
  opt.scale = 0.02;
  const Catalog c = BuildTpchLite(opt);
  CardinalityCache cache;
  Evaluator eval(&c, &cache);

  const ColumnRef o_price = c.ResolveColumn("orders", "o_totalprice");
  const ColumnRef o_key = c.ResolveColumn("orders", "o_orderkey");
  const ColumnRef l_key = c.ResolveColumn("lineitem", "l_orderkey");
  const Query q({Predicate::Filter(o_price, 50000, 10000000),
                 Predicate::Join(l_key, o_key)});
  const double base_sel = eval.TrueSelectivity(q, 0b01);
  const double joined_sel = eval.TrueConditionalSelectivity(q, 0b01, 0b10);
  EXPECT_GT(joined_sel, 3.0 * base_sel);
}

}  // namespace
}  // namespace condsel
