// Tests for 2-d histograms and multidimensional SITs.

#include <gtest/gtest.h>

#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "condsel/histogram/histogram2d.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

// Exact fraction of pairs in the box.
double ExactBoxSel(const std::vector<int64_t>& xs,
                   const std::vector<int64_t>& ys, double total, int64_t xl,
                   int64_t xh, int64_t yl, int64_t yh) {
  size_t c = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    c += (xs[i] >= xl && xs[i] <= xh && ys[i] >= yl && ys[i] <= yh);
  }
  return static_cast<double>(c) / total;
}

TEST(Histogram2dTest, EmptyInput) {
  const Histogram2d h = BuildHistogram2d({}, {}, 0.0, 16);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0, 10, 0, 10), 0.0);
}

TEST(Histogram2dTest, SinglePoint) {
  const Histogram2d h = BuildHistogram2d({5, 5}, {7, 7}, 2.0, 16);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(5, 5, 7, 7), 1.0);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0, 4, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(5, 5, 0, 6), 0.0);
}

TEST(Histogram2dTest, TotalMassPreserved) {
  Rng rng(3);
  std::vector<int64_t> xs(5000), ys(5000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.NextInRange(0, 99);
    ys[i] = rng.NextInRange(0, 99);
  }
  const Histogram2d h = BuildHistogram2d(xs, ys, 5000.0, 256);
  EXPECT_NEAR(h.total_frequency(), 1.0, 1e-9);
  EXPECT_NEAR(h.RangeSelectivity(0, 99, 0, 99), 1.0, 1e-9);
}

TEST(Histogram2dTest, NullDilution) {
  // Source cardinality larger than the pair count: NULL rows carry no
  // mass.
  const Histogram2d h = BuildHistogram2d({1, 2}, {1, 2}, 4.0, 16);
  EXPECT_NEAR(h.total_frequency(), 0.5, 1e-12);
}

TEST(Histogram2dTest, CorrelatedDataBoxAccuracy) {
  // y tracks x: mass lives near the diagonal. A 2-d histogram captures
  // this; the product of marginals cannot.
  Rng rng(7);
  std::vector<int64_t> xs(20000), ys(20000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.NextInRange(0, 99);
    ys[i] = std::clamp<int64_t>(xs[i] + rng.NextInRange(-3, 3), 0, 99);
  }
  const Histogram2d h = BuildHistogram2d(xs, ys, 20000.0, 400);
  // On-diagonal box: dense.
  const double on = ExactBoxSel(xs, ys, 20000.0, 20, 40, 20, 40);
  EXPECT_NEAR(h.RangeSelectivity(20, 40, 20, 40), on, 0.07);
  // Off-diagonal box: (nearly) empty, and the histogram must know it.
  const double off = ExactBoxSel(xs, ys, 20000.0, 0, 20, 60, 99);
  EXPECT_NEAR(off, 0.0, 1e-9);
  EXPECT_LT(h.RangeSelectivity(0, 20, 60, 99), 0.02);
  // The independence product would be badly wrong here:
  const double px = ExactBoxSel(xs, ys, 20000.0, 20, 40, -1000, 1000);
  const double py = ExactBoxSel(xs, ys, 20000.0, -1000, 1000, 20, 40);
  EXPECT_GT(on, 1.5 * px * py);
}

TEST(Histogram2dTest, CellBudgetRespected) {
  Rng rng(9);
  std::vector<int64_t> xs(10000), ys(10000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.NextInRange(0, 999);
    ys[i] = rng.NextInRange(0, 999);
  }
  const Histogram2d h = BuildHistogram2d(xs, ys, 10000.0, 100);
  // Phased partitioning can slightly exceed sqrt x sqrt; allow 2x slack.
  EXPECT_LE(h.num_buckets(), 200u);
  EXPECT_GE(h.num_buckets(), 10u);
}

class MultidimSitTest : public ::testing::Test {
 protected:
  MultidimSitTest() {
    // One table with two correlated attributes plus an independent one.
    TableSchema s;
    s.name = "W";
    s.columns = {{"a", 0, 99, false}, {"b", 0, 99, false},
                 {"u", 0, 99, false}};
    Table t(s);
    Rng rng(21);
    for (int64_t i = 0; i < 4000; ++i) {
      const int64_t a = rng.NextInRange(0, 99);
      const int64_t b = std::clamp<int64_t>(a + rng.NextInRange(-2, 2), 0, 99);
      t.AppendRow({a, b, rng.NextInRange(0, 99)});
    }
    catalog_.AddTable(std::move(t));
    eval_ = std::make_unique<Evaluator>(&catalog_, &cache_);
    builder_ = std::make_unique<SitBuilder>(eval_.get(),
                                            SitBuildOptions{});
  }

  Catalog catalog_;
  CardinalityCache cache_;
  std::unique_ptr<Evaluator> eval_;
  std::unique_ptr<SitBuilder> builder_;
};

TEST_F(MultidimSitTest, Build2dCanonicalizesAndMeasuresCorrelation) {
  const Sit corr = builder_->Build2d({0, 1}, {0, 0}, {});
  EXPECT_TRUE(corr.is_multidim());
  EXPECT_TRUE(corr.attr < corr.attr2 || corr.attr == corr.attr2);
  EXPECT_GT(corr.diff, 0.5);  // strongly correlated pair

  const Sit indep = builder_->Build2d({0, 0}, {0, 2}, {});
  EXPECT_LT(indep.diff, 0.3);  // independent pair: near-product joint
}

TEST_F(MultidimSitTest, PoolDeduplicatesSeparatelyFrom1d) {
  SitPool pool;
  const SitId one_d = pool.Add(builder_->Build({0, 0}, {}));
  const SitId two_d = pool.Add(builder_->Build2d({0, 0}, {0, 1}, {}));
  const SitId again = pool.Add(builder_->Build2d({0, 1}, {0, 0}, {}));
  EXPECT_NE(one_d, two_d);
  EXPECT_EQ(two_d, again);  // canonical order dedupes the swapped pair
}

TEST_F(MultidimSitTest, DpUsesPairFactorWhenItHelps) {
  // Query: two correlated filters. With only base 1-d histograms the
  // estimate is the independence product (badly wrong); with the 2-d SIT
  // the DP picks the pair factor and lands near the truth.
  const Query q({Predicate::Filter({0, 0}, 10, 30),
                 Predicate::Filter({0, 1}, 10, 30)});
  const double truth = eval_->TrueSelectivity(q, q.all_predicates());

  SitPool base_pool;
  base_pool.Add(builder_->Build({0, 0}, {}));
  base_pool.Add(builder_->Build({0, 1}, {}));
  SitPool rich_pool = base_pool;
  rich_pool.Add(builder_->Build2d({0, 0}, {0, 1}, {}));

  DiffError diff;
  auto estimate = [&](const SitPool& pool) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff);
    GetSelectivity gs(&q, &fa);
    return gs.Compute(q.all_predicates()).selectivity;
  };
  const double naive = estimate(base_pool);
  const double with_2d = estimate(rich_pool);
  EXPECT_GT(std::abs(naive - truth), 2.0 * std::abs(with_2d - truth));
  EXPECT_NEAR(with_2d, truth, 0.3 * truth + 1e-6);
}

TEST_F(MultidimSitTest, MatcherCandidates2Consistency) {
  SitPool pool;
  pool.Add(builder_->Build2d({0, 0}, {0, 1}, {}));
  const Query q({Predicate::Filter({0, 0}, 10, 30),
                 Predicate::Filter({0, 1}, 10, 30)});
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  EXPECT_EQ(matcher.Candidates2({0, 0}, {0, 1}, 0).size(), 1u);
  EXPECT_EQ(matcher.Candidates2({0, 1}, {0, 0}, 0).size(), 1u);  // swapped
  EXPECT_TRUE(matcher.Candidates({0, 0}, 0).empty());  // not a 1-d SIT
  EXPECT_TRUE(matcher.Candidates2({0, 0}, {0, 2}, 0).empty());
}

}  // namespace
}  // namespace condsel
