// Tests for candidate-SIT matching (Section 3.3's rules, Example 2).

#include <gtest/gtest.h>

#include "condsel/exec/evaluator.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class SitMatcherTest : public ::testing::Test {
 protected:
  SitMatcherTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5),      // 0
                Predicate::Join(Rx(), Sy()),        // 1
                Predicate::Join(Sb(), Tz()),        // 2
                Predicate::Filter(Tc(), 1, 3)}) {}  // 3

  // Pool: base(R.a), SIT(R.a | RS), SIT(R.a | RS, ST), base(T.c).
  void FillPool() {
    pool_.Add(builder_.Build(Ra(), {}));
    pool_.Add(builder_.Build(Ra(), {query_.predicate(1)}));
    pool_.Add(
        builder_.Build(Ra(), {query_.predicate(1), query_.predicate(2)}));
    pool_.Add(builder_.Build(Tc(), {}));
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
};

TEST_F(SitMatcherTest, BaseOnlyWhenCondEmpty) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  const auto cands = matcher.Candidates(Ra(), 0);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].sit->is_base());
  EXPECT_EQ(cands[0].expr_mask, 0u);
}

TEST_F(SitMatcherTest, MaximalityPrunesBaseAndSmallerSits) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  // Cond = {j_RS}: SIT(R.a | RS) is consistent and maximal; the base
  // histogram is strictly contained, the 2-join SIT is inconsistent.
  const auto cands = matcher.Candidates(Ra(), 0b010);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].expr_mask, 0b010u);
}

TEST_F(SitMatcherTest, LargestConsistentSitWins) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  // Cond = {j_RS, j_ST, filter T.c}: the 2-join SIT is consistent and
  // subsumes the 1-join SIT.
  const auto cands = matcher.Candidates(Ra(), 0b1110);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].expr_mask, 0b110u);
}

TEST_F(SitMatcherTest, IncomparableCandidatesBothKept) {
  // Example 2's shape: two SITs conditioned on incomparable subsets.
  pool_.Add(builder_.Build(Ra(), {query_.predicate(1)}));
  pool_.Add(builder_.Build(Sb(), {query_.predicate(1)}));  // different attr
  // Add SIT(R.a | ST)? The expression must reach R; instead build a
  // same-attr incomparable pair via two different single joins from R.
  // Tiny catalog has only one join touching R, so emulate with attr S.b:
  pool_.Add(builder_.Build(Sb(), {query_.predicate(2)}));
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  const auto cands = matcher.Candidates(Sb(), 0b110);
  // SIT(S.b|RS) and SIT(S.b|ST): incomparable expressions, both maximal.
  EXPECT_EQ(cands.size(), 2u);
}

TEST_F(SitMatcherTest, InapplicableExpressionIgnored) {
  // A SIT whose expression predicate is not part of the bound query must
  // not surface.
  pool_.Add(builder_.Build(Ra(), {}));
  pool_.Add(builder_.Build(Ra(), {Predicate::Join(Ra(), Sb())}));
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  const auto cands = matcher.Candidates(Ra(), query_.all_predicates());
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].sit->is_base());
}

TEST_F(SitMatcherTest, UnknownAttributeYieldsNothing) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  EXPECT_TRUE(matcher.Candidates(Sy(), query_.all_predicates()).empty());
}

TEST_F(SitMatcherTest, CallCounterCounts) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  EXPECT_EQ(matcher.num_calls(), 0u);
  matcher.Candidates(Ra(), 0);
  matcher.Candidates(Ra(), 0b010);
  EXPECT_EQ(matcher.num_calls(), 2u);
  matcher.ResetCallCounter();
  EXPECT_EQ(matcher.num_calls(), 0u);
}

TEST_F(SitMatcherTest, RebindSwitchesQuery) {
  FillPool();
  SitMatcher matcher(&pool_);
  matcher.BindQuery(&query_);
  EXPECT_EQ(matcher.Candidates(Ra(), 0b010).size(), 1u);
  // A different query without the R-S join: the join SITs don't apply.
  const Query other({Predicate::Filter(Ra(), 2, 4)});
  matcher.BindQuery(&other);
  const auto cands = matcher.Candidates(Ra(), 0);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].sit->is_base());
}

}  // namespace
}  // namespace condsel
