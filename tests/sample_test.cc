// Tests for sample-based SITs.

#include <gtest/gtest.h>

#include <set>

#include "condsel/common/zipf.h"
#include "condsel/sampling/sample.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }

class SampleTest : public ::testing::Test {
 protected:
  SampleTest() : catalog_(test::MakeTinyCatalog()), eval_(&catalog_, &cache_) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
};

TEST_F(SampleTest, FullReservoirIsExact) {
  // Reservoir larger than the table: estimates are exact.
  SampleSitBuilder builder(&eval_, 1000);
  const SampleSit s = builder.Build({Ra(), Rx()}, {});
  EXPECT_EQ(s.sample_size(), 10u);
  EXPECT_DOUBLE_EQ(s.source_cardinality(), 10.0);
  EXPECT_DOUBLE_EQ(s.Selectivity({Predicate::Filter(Ra(), 1, 5)}), 0.5);
  // Conjunction over both attributes, exact:
  // a in [1,5] AND x in [10,20]: rows 1..5 have x = 10,10,20,20,20. All 5.
  EXPECT_DOUBLE_EQ(s.Selectivity({Predicate::Filter(Ra(), 1, 5),
                                  Predicate::Filter(Rx(), 10, 20)}),
                   0.5);
}

TEST_F(SampleTest, SampleOverJoinExpression) {
  SampleSitBuilder builder(&eval_, 1000);
  const SampleSit s =
      builder.Build({Ra()}, {Predicate::Join(Rx(), Sy())});
  EXPECT_DOUBLE_EQ(s.source_cardinality(), 10.0);  // join size
  // Sel(a in [1,5] | join) = 0.7 (see evaluator tests).
  EXPECT_DOUBLE_EQ(s.Selectivity({Predicate::Filter(Ra(), 1, 5)}), 0.7);
}

TEST_F(SampleTest, NullsNeverMatch) {
  SampleSitBuilder builder(&eval_, 1000);
  const SampleSit s = builder.Build({Sy()}, {});
  // 8 rows, one NULL: matching the full domain gives 7/8.
  EXPECT_DOUBLE_EQ(
      s.Selectivity({Predicate::Filter(Sy(), -1000000, 1000000)}),
      7.0 / 8.0);
}

TEST_F(SampleTest, ReservoirSizeBoundedAndUnbiased) {
  // Large skewed base table, small reservoir: the estimate should be
  // within a few points of the truth.
  Catalog c;
  {
    TableSchema ts;
    ts.name = "big";
    ts.columns = {{"v", 0, 999, false}};
    Table t(ts);
    Rng rng(5);
    ZipfSampler zipf(1000, 1.0);
    for (int i = 0; i < 50000; ++i) {
      t.AppendRow({zipf.Next(rng)});
    }
    c.AddTable(std::move(t));
  }
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  SampleSitBuilder builder(&ev, 2000);
  const SampleSit s = builder.Build({{0, 0}}, {});
  EXPECT_EQ(s.sample_size(), 2000u);

  const Query q({Predicate::Filter({0, 0}, 0, 9)});
  const double truth = ev.TrueSelectivity(q, 1);
  EXPECT_NEAR(s.Selectivity({Predicate::Filter({0, 0}, 0, 9)}), truth,
              0.05);
}

TEST_F(SampleTest, CorrelatedConjunctionBeatsIndependence) {
  // Perfectly correlated pair: the sample captures the joint directly.
  Catalog c;
  {
    TableSchema ts;
    ts.name = "corr";
    ts.columns = {{"a", 0, 99, false}, {"b", 0, 99, false}};
    Table t(ts);
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
      const int64_t a = rng.NextInRange(0, 99);
      t.AppendRow({a, a});
    }
    c.AddTable(std::move(t));
  }
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  SampleSitBuilder builder(&ev, 1500);
  const SampleSit s = builder.Build({{0, 0}, {0, 1}}, {});
  const double joint = s.Selectivity({Predicate::Filter({0, 0}, 0, 19),
                                      Predicate::Filter({0, 1}, 0, 19)});
  // True joint is 0.2 (a == b); independence would say 0.04.
  EXPECT_NEAR(joint, 0.2, 0.04);
}

TEST_F(SampleTest, DistinctEstimation) {
  SampleSitBuilder builder(&eval_, 1000);
  const SampleSit s = builder.Build({Rx()}, {});
  // R.x has 6 distinct values, fully sampled.
  EXPECT_NEAR(s.EstimateDistinct(Rx()), 6.0, 1e-9);
}

TEST_F(SampleTest, DistinctEstimationScalesFromPartialSample) {
  // 5000 distinct values uniformly; a 500-row sample must extrapolate
  // well beyond the ~490 distincts it sees.
  Catalog c;
  {
    TableSchema ts;
    ts.name = "wide";
    ts.columns = {{"v", 0, 4999, false}};
    Table t(ts);
    for (int64_t i = 0; i < 5000; ++i) t.AppendRow({i});
    c.AddTable(std::move(t));
  }
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  SampleSitBuilder builder(&ev, 500);
  const SampleSit s = builder.Build({{0, 0}}, {});
  const double est = s.EstimateDistinct({0, 0});
  EXPECT_GT(est, 1000.0);  // far above the naive sample count
  EXPECT_LT(est, 5000.0 * 1.2);
}

TEST_F(SampleTest, DeterministicForSeed) {
  SampleSitBuilder b1(&eval_, 4, 99);
  SampleSitBuilder b2(&eval_, 4, 99);
  const SampleSit s1 = b1.Build({Ra()}, {});
  const SampleSit s2 = b2.Build({Ra()}, {});
  EXPECT_DOUBLE_EQ(s1.Selectivity({Predicate::Filter(Ra(), 1, 5)}),
                   s2.Selectivity({Predicate::Filter(Ra(), 1, 5)}));
}

}  // namespace
}  // namespace condsel
