// Tests for SIT construction and the J_i pool generator.

#include <gtest/gtest.h>

#include "condsel/exec/evaluator.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

class SitTest : public ::testing::Test {
 protected:
  SitTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
};

TEST_F(SitTest, BaseHistogramHasZeroDiff) {
  const Sit sit = builder_.Build(Ra(), {});
  EXPECT_TRUE(sit.is_base());
  EXPECT_DOUBLE_EQ(sit.diff, 0.0);
  EXPECT_DOUBLE_EQ(sit.histogram.source_cardinality(), 10.0);
  // R.a is 1..10: exact per-value buckets at 64 buckets.
  EXPECT_NEAR(sit.histogram.RangeSelectivity(1, 5), 0.5, 1e-12);
}

TEST_F(SitTest, SitOverJoinReflectsJoinDistribution) {
  // SIT(R.a | R join S): the join keeps a in {1,2,3,4,5,6,7,8} with
  // multiplicities {2,2,1,1,1,1,1,1} (10 tuples). Values 9,10 drop out.
  const Sit sit = builder_.Build(Ra(), {Predicate::Join(Rx(), Sy())});
  EXPECT_FALSE(sit.is_base());
  EXPECT_DOUBLE_EQ(sit.histogram.source_cardinality(), 10.0);
  EXPECT_NEAR(sit.histogram.RangeSelectivity(1, 2), 0.4, 1e-12);
  EXPECT_NEAR(sit.histogram.RangeSelectivity(9, 10), 0.0, 1e-12);
  // diff: base is uniform 1/10 over 1..10; join gives 2/10 on {1,2},
  // 1/10 on 3..8, 0 on {9,10}. L1 = 2*(0.1) + 0 + 2*(0.1) = 0.4 ->
  // diff = 0.2.
  EXPECT_NEAR(sit.diff, 0.2, 1e-12);
}

TEST_F(SitTest, ExpressionIsCanonicalized) {
  const Predicate j1 = Predicate::Join(Rx(), Sy());
  const Predicate j2 = Predicate::Join(Sb(), Tz());
  const Sit s1 = builder_.Build(Ra(), {j1, j2});
  const Sit s2 = builder_.Build(Ra(), {j2, j1});
  EXPECT_EQ(s1.expression, s2.expression);
}

TEST_F(SitTest, BuildManyMatchesSingleBuilds) {
  const std::vector<Predicate> expr = {Predicate::Join(Rx(), Sy())};
  const auto many = builder_.BuildMany({Ra(), Sb()}, expr);
  ASSERT_EQ(many.size(), 2u);
  const Sit lone_a = builder_.Build(Ra(), expr);
  const Sit lone_b = builder_.Build(Sb(), expr);
  EXPECT_DOUBLE_EQ(many[0].diff, lone_a.diff);
  EXPECT_DOUBLE_EQ(many[1].diff, lone_b.diff);
  EXPECT_NEAR(many[0].histogram.RangeSelectivity(1, 2),
              lone_a.histogram.RangeSelectivity(1, 2), 1e-12);
}

TEST_F(SitTest, PoolDeduplicates) {
  SitPool pool;
  const SitId id1 = pool.Add(builder_.Build(Ra(), {}));
  const SitId id2 = pool.Add(builder_.Build(Ra(), {}));
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(pool.size(), 1);
}

TEST_F(SitTest, PoolBaseLookup) {
  SitPool pool;
  pool.Add(builder_.Build(Ra(), {}));
  pool.Add(builder_.Build(Ra(), {Predicate::Join(Rx(), Sy())}));
  const Sit* base = pool.FindBase(Ra());
  ASSERT_NE(base, nullptr);
  EXPECT_TRUE(base->is_base());
  EXPECT_EQ(pool.FindBase(Sb()), nullptr);
}

TEST_F(SitTest, GenerateJ0PoolIsBasesOnly) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Sb(), 100, 200)});
  const SitPool pool = GenerateSitPool({q}, 0, builder_);
  // Base histograms for every referenced column: R.a, R.x, S.y, S.b.
  EXPECT_EQ(pool.size(), 4);
  for (const Sit& s : pool.sits()) EXPECT_TRUE(s.is_base());
}

TEST_F(SitTest, GenerateJ1PoolAddsJoinSits) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Sb(), 100, 200),
                 Predicate::Join(Sb(), Tz()), Predicate::Filter(Tc(), 1, 3)});
  const SitPool j0 = GenerateSitPool({q}, 0, builder_);
  const SitPool j1 = GenerateSitPool({q}, 1, builder_);
  const SitPool j2 = GenerateSitPool({q}, 2, builder_);
  EXPECT_GT(j1.size(), j0.size());
  EXPECT_GT(j2.size(), j1.size());
  // J1: single-join expressions only.
  for (const Sit& s : j1.sits()) {
    EXPECT_LE(s.expression.size(), 1u);
  }
  // Every SIT's attribute table must appear in its expression.
  for (const Sit& s : j2.sits()) {
    if (s.is_base()) continue;
    TableSet tables = 0;
    for (const Predicate& p : s.expression) tables |= p.tables();
    EXPECT_TRUE(Contains(tables, s.attr.table)) << s.ToString(catalog_);
  }
}

TEST_F(SitTest, GenerateJ2PoolContainsTwoWayJoinSit) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Join(Sb(), Tz()), Predicate::Filter(Tc(), 1, 3)});
  const SitPool pool = GenerateSitPool({q}, 2, builder_);
  EXPECT_TRUE(pool.Has(
      Ra(), {Predicate::Join(Rx(), Sy()), Predicate::Join(Sb(), Tz())}));
  // Disconnected expressions must not appear: {S.b=T.z} alone does not
  // reach R, so SIT(R.a | S join T) is not generated.
  EXPECT_FALSE(pool.Has(Ra(), {Predicate::Join(Sb(), Tz())}));
}

TEST_F(SitTest, FkJoinPreservingDistributionHasNearZeroDiff) {
  // Example 4's scenario: when every R row matches exactly one S row
  // (key-foreign key with full referential integrity), the distribution
  // of R.a over the join equals the base distribution -> diff ~ 0.
  Catalog c;
  c.AddTable(test::MakeTable("F", {"fa", "fk"},
                             {{1, 0}, {2, 1}, {3, 2}, {4, 0}, {5, 1}}));
  c.AddTable(test::MakeTable("D", {"pk"}, {{0}, {1}, {2}}));
  CardinalityCache cache;
  Evaluator ev(&c, &cache);
  SitBuilder b(&ev, {HistogramType::kMaxDiff, 32});
  const Sit sit = b.Build({0, 0}, {Predicate::Join({0, 1}, {1, 0})});
  EXPECT_NEAR(sit.diff, 0.0, 1e-12);
}

}  // namespace
}  // namespace condsel
