// Tests for the shape-keyed decomposition cache (shape_cache.h): the
// canonical-shape key, skeleton sharing across structurally identical
// statements, bit-identity of cached vs fresh enumeration, and the
// no-truncated-lists storage gate.

#include <gtest/gtest.h>

#include "condsel/api.h"
#include "condsel/common/fault_injector.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/selectivity/shape_cache.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }
ColumnRef Tc() { return {2, 1}; }

Query ChainQuery(int64_t filter_lo, int64_t filter_hi) {
  return Query({Predicate::Filter(Ra(), filter_lo, filter_hi),
                Predicate::Join(Rx(), Sy()),
                Predicate::Join(Sb(), Tz()),
                Predicate::Filter(Tc(), 1, 3)});
}

TEST(CanonicalShapeKeyTest, ConstantsDoNotChangeTheKey) {
  EXPECT_EQ(CanonicalShapeKey(ChainQuery(1, 5)),
            CanonicalShapeKey(ChainQuery(2, 9)));
}

TEST(CanonicalShapeKeyTest, PredicateKindChangesTheKey) {
  const Query filters({Predicate::Filter(Ra(), 1, 5),
                       Predicate::Filter(Sb(), 1, 5)});
  const Query join({Predicate::Filter(Ra(), 1, 5),
                    Predicate::Join(Rx(), Sy())});
  EXPECT_NE(CanonicalShapeKey(filters), CanonicalShapeKey(join));
}

TEST(CanonicalShapeKeyTest, ColumnAttachmentChangesTheKey) {
  // Filter on the join's own column vs on an unrelated column of the
  // same table: the attachment pattern feeds candidate enumeration, so
  // the keys must differ.
  const Query attached({Predicate::Filter(Rx(), 1, 5),
                        Predicate::Join(Rx(), Sy())});
  const Query detached({Predicate::Filter(Ra(), 1, 5),
                        Predicate::Join(Rx(), Sy())});
  EXPECT_NE(CanonicalShapeKey(attached), CanonicalShapeKey(detached));
}

TEST(CanonicalShapeKeyTest, RenamingCollapsesTableIdentity) {
  // Same structure over different concrete tables: first-appearance
  // renaming maps both to one key.
  const Query over_rs({Predicate::Filter(Ra(), 1, 5),
                       Predicate::Join(Rx(), Sy())});
  const Query over_st({Predicate::Filter(Sb(), 1, 5),
                       Predicate::Join(Sy(), Tz())});
  EXPECT_EQ(CanonicalShapeKey(over_rs), CanonicalShapeKey(over_st));
}

class ShapeCacheTest : public ::testing::Test {
 protected:
  ShapeCacheTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}) {}

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  DiffError diff_;
};

TEST_F(ShapeCacheTest, SecondStatementOfSameShapeHitsAndMatchesBitForBit) {
  const Query q1 = ChainQuery(1, 5);
  const Query q2 = ChainQuery(2, 9);  // same shape, different constants
  const SitPool pool = GenerateSitPool({q1}, 2, builder_);

  ShapeCache shapes;
  const std::shared_ptr<ShapeCache::Entry> e1 = shapes.Acquire(q1);
  const std::shared_ptr<ShapeCache::Entry> e2 = shapes.Acquire(q2);
  ASSERT_EQ(e1.get(), e2.get());  // one shape, one skeleton
  EXPECT_EQ(shapes.shapes(), 1u);

  SitMatcher m1(&pool);
  m1.BindQuery(&q1);
  AtomicSelectivityProvider p1(&m1, &diff_);
  GetSelectivity gs1(&q1, &p1, nullptr, e1.get());
  gs1.Compute(q1.all_predicates());
  EXPECT_GT(gs1.stats().shape_cache_misses, 0u);
  EXPECT_EQ(gs1.stats().shape_cache_hits, 0u);
  EXPECT_GT(e1->cached_subsets(), 0u);

  // The warm statement serves every enumeration from the skeleton...
  SitMatcher m2(&pool);
  m2.BindQuery(&q2);
  AtomicSelectivityProvider p2(&m2, &diff_);
  GetSelectivity gs2(&q2, &p2, nullptr, e2.get());
  const SelEstimate warm = gs2.Compute(q2.all_predicates());
  EXPECT_GT(gs2.stats().shape_cache_hits, 0u);
  EXPECT_EQ(gs2.stats().shape_cache_misses, 0u);

  // ...and produces exactly the estimate an uncached search would.
  SitMatcher m3(&pool);
  m3.BindQuery(&q2);
  AtomicSelectivityProvider p3(&m3, &diff_);
  GetSelectivity cold(&q2, &p3);
  EXPECT_EQ(warm.selectivity, cold.Compute(q2.all_predicates()).selectivity);
  EXPECT_EQ(gs2.stats().subproblems, cold.stats().subproblems);
  EXPECT_EQ(cold.stats().shape_cache_hits, 0u);  // no cache attached
}

TEST_F(ShapeCacheTest, TruncatedEnumerationIsNeverStored) {
  const Query q = ChainQuery(1, 5);
  const SitPool pool = GenerateSitPool({q}, 2, builder_);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  AtomicSelectivityProvider provider(&matcher, &diff_);

  ShapeCache shapes;
  const std::shared_ptr<ShapeCache::Entry> entry = shapes.Acquire(q);
  EstimationBudget budget;
  budget.deadline_seconds = 3600.0;  // armed, expiry forced by the fault
  GetSelectivity gs(&q, &provider, &budget, entry.get());
  {
    ScopedFault expire(Fault::kExpireDeadline);
    gs.Compute(q.all_predicates());
  }
  // Whatever the truncated pass enumerated, none of it may have been
  // cached: a later statement of this shape must enumerate afresh.
  EXPECT_EQ(entry->cached_subsets(), 0u);
}

TEST_F(ShapeCacheTest, EstimatorSharesShapesAcrossSessions) {
  const Query q1 = ChainQuery(1, 5);
  const Query q2 = ChainQuery(2, 9);
  const SitPool pool = GenerateSitPool({q1}, 2, builder_);
  Estimator estimator(&catalog_, &pool);
  ASSERT_TRUE(estimator.TryEstimateSelectivity(q1).ok());
  ASSERT_TRUE(estimator.TryEstimateSelectivity(q2).ok());
  const GsStats* s1 = estimator.StatsFor(q1);
  const GsStats* s2 = estimator.StatsFor(q2);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_GT(s1->shape_cache_misses, 0u);  // cold shape: enumerated
  EXPECT_EQ(s2->shape_cache_misses, 0u);  // warm shape: copied
  EXPECT_GT(s2->shape_cache_hits, 0u);
}

}  // namespace
}  // namespace condsel
