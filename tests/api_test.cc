// Tests for the top-level Estimator facade.

#include <gtest/gtest.h>

#include "condsel/api.h"
#include "condsel/sit/sit_builder.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : catalog_(test::MakeTinyCatalog()),
        eval_(&catalog_, &cache_),
        builder_(&eval_, {HistogramType::kMaxDiff, 64}),
        query_({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy())}) {
    pool_ = GenerateSitPool({query_}, 1, builder_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  Evaluator eval_;
  SitBuilder builder_;
  Query query_;
  SitPool pool_;
};

TEST_F(ApiTest, CardinalityMatchesManualWiring) {
  Estimator est(&catalog_, &pool_, Ranking::kDiff);
  const double card = est.EstimateCardinality(query_);
  // With the join SIT available, the estimate is exact here (7 rows).
  EXPECT_NEAR(card, eval_.Cardinality(query_, query_.all_predicates()),
              1e-6);
  EXPECT_NEAR(est.EstimateSelectivity(query_), card / 80.0, 1e-12);
}

TEST_F(ApiTest, SubsetMasksUseTheCallersIndexing) {
  Estimator est(&catalog_, &pool_, Ranking::kDiff);
  // Predicate 0 is the filter, predicate 1 the join — masks must honour
  // that ordering even across the session cache.
  EXPECT_NEAR(est.EstimateSelectivity(query_, 0b01), 0.5, 1e-9);
  EXPECT_NEAR(est.EstimateSelectivity(query_, 0b10), 0.125, 1e-9);
  // A query with the reverse predicate order gets its own session.
  const Query reversed({Predicate::Join(Rx(), Sy()),
                        Predicate::Filter(Ra(), 1, 5)});
  EXPECT_NEAR(est.EstimateSelectivity(reversed, 0b01), 0.125, 1e-9);
  EXPECT_EQ(est.cached_queries(), 2u);
}

TEST_F(ApiTest, SessionsAreReused) {
  Estimator est(&catalog_, &pool_);
  est.EstimateSelectivity(query_);
  est.EstimateSelectivity(query_, 0b01);
  est.EstimateCardinality(query_, 0b10);
  EXPECT_EQ(est.cached_queries(), 1u);
  est.ClearCache();
  EXPECT_EQ(est.cached_queries(), 0u);
}

TEST_F(ApiTest, ExplainIsHumanReadable) {
  Estimator est(&catalog_, &pool_);
  const std::string why = est.Explain(query_);
  EXPECT_NE(why.find("Sel("), std::string::npos);
  EXPECT_NE(why.find("sit#"), std::string::npos);
}

TEST_F(ApiTest, RankingSelectionTakesEffect) {
  // Both rankings must produce valid probabilities; on this query with a
  // three-table chain they can choose different decompositions.
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Join(Sb(), Tz())});
  const SitPool pool = GenerateSitPool({q}, 2, builder_);
  Estimator diff_est(&catalog_, &pool, Ranking::kDiff);
  Estimator nind_est(&catalog_, &pool, Ranking::kNInd);
  for (Estimator* est : {&diff_est, &nind_est}) {
    const double sel = est->EstimateSelectivity(q);
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
}

TEST_F(ApiTest, OutlivesTemporaryCallerQueries) {
  // The facade copies the query into its session; the caller's Query may
  // die immediately.
  Estimator est(&catalog_, &pool_);
  double first = 0.0;
  {
    const Query temp({Predicate::Filter(Ra(), 1, 5),
                      Predicate::Join(Rx(), Sy())});
    first = est.EstimateSelectivity(temp);
  }
  const Query again({Predicate::Filter(Ra(), 1, 5),
                     Predicate::Join(Rx(), Sy())});
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(again), first);
  EXPECT_EQ(est.cached_queries(), 1u);
}

TEST_F(ApiTest, StrictRejectsDegradedEstimates) {
  // One subproblem cannot cover the whole lattice of a two-predicate
  // query, so the session degrades and Strict must refuse it.
  EstimationBudget tight;
  tight.max_subproblems = 1;
  Estimator strict(&catalog_, &pool_, Ranking::kDiff, tight);
  const StatusOr<double> degraded =
      strict.TryEstimateSelectivityStrict(query_, query_.all_predicates());
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kResourceExhausted);
  // The lenient entry point still hands back the degraded value.
  EXPECT_TRUE(strict.TryEstimateSelectivity(query_).ok());

  // With the default budget nothing degrades and Strict matches the
  // lenient estimate bit for bit.
  Estimator relaxed(&catalog_, &pool_, Ranking::kDiff);
  const StatusOr<double> full =
      relaxed.TryEstimateSelectivityStrict(query_, query_.all_predicates());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value(), relaxed.TryEstimateSelectivity(query_).value());
}

}  // namespace
}  // namespace condsel
