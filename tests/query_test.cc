// Tests for predicates, queries, predicate sets, and the join graph.

#include <gtest/gtest.h>

#include "condsel/query/join_graph.h"
#include "condsel/query/predicate.h"
#include "condsel/query/predicate_set.h"
#include "condsel/query/query.h"
#include "test_util.h"

namespace condsel {
namespace {

ColumnRef Ra() { return {0, 0}; }
ColumnRef Rx() { return {0, 1}; }
ColumnRef Sy() { return {1, 0}; }
ColumnRef Sb() { return {1, 1}; }
ColumnRef Tz() { return {2, 0}; }

TEST(PredicateSetTest, BasicOps) {
  PredSet s = 0;
  s = With(s, 0);
  s = With(s, 3);
  EXPECT_TRUE(Contains(s, 0));
  EXPECT_FALSE(Contains(s, 1));
  EXPECT_TRUE(Contains(s, 3));
  EXPECT_EQ(SetSize(s), 2);
  EXPECT_EQ(Without(s, 0), 8u);
  EXPECT_TRUE(IsSubset(1u, s));
  EXPECT_FALSE(IsSubset(2u, s));
  EXPECT_EQ(SetElements(s), (std::vector<int>{0, 3}));
}

TEST(PredicateSetTest, SubmaskEnumerationVisitsAll) {
  const PredSet s = 0b1011;
  std::vector<PredSet> seen;
  for (PredSet sub = s; sub != 0; sub = PrevSubmask(s, sub)) {
    seen.push_back(sub);
  }
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1 non-empty submasks
  for (PredSet sub : seen) EXPECT_TRUE(IsSubset(sub, s));
}

TEST(PredicateTest, FilterAccessors) {
  const Predicate p = Predicate::Filter(Ra(), 5, 10);
  EXPECT_TRUE(p.is_filter());
  EXPECT_EQ(p.lo(), 5);
  EXPECT_EQ(p.hi(), 10);
  EXPECT_EQ(p.column(), Ra());
  EXPECT_EQ(p.tables(), 1u);
  EXPECT_EQ(p.attrs().size(), 1u);
}

TEST(PredicateTest, EqualsIsDegenerateRange) {
  const Predicate p = Predicate::Equals(Sb(), 7);
  EXPECT_EQ(p.lo(), 7);
  EXPECT_EQ(p.hi(), 7);
}

TEST(PredicateTest, JoinCanonicalization) {
  const Predicate p = Predicate::Join(Sy(), Ra());
  // Sides are swapped so the smaller ColumnRef is on the left.
  EXPECT_EQ(p.left(), Ra());
  EXPECT_EQ(p.right(), Sy());
  EXPECT_EQ(p, Predicate::Join(Ra(), Sy()));
  EXPECT_EQ(p.tables(), 0b11u);
}

TEST(PredicateTest, Ordering) {
  const Predicate a = Predicate::Filter(Ra(), 1, 2);
  const Predicate b = Predicate::Filter(Ra(), 1, 3);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a, Predicate::Filter(Ra(), 1, 2));
}

TEST(QueryTest, Classification) {
  const Query q({Predicate::Filter(Ra(), 1, 5), Predicate::Join(Rx(), Sy()),
                 Predicate::Filter(Sb(), 0, 100)});
  EXPECT_EQ(q.num_predicates(), 3);
  EXPECT_EQ(q.all_predicates(), 0b111u);
  EXPECT_EQ(q.filter_predicates(), 0b101u);
  EXPECT_EQ(q.join_predicates(), 0b010u);
  EXPECT_EQ(q.tables(), 0b11u);
  EXPECT_EQ(q.TablesOfSubset(0b001), 0b01u);
  EXPECT_EQ(q.TablesOfSubset(0b010), 0b11u);
}

TEST(QueryTest, CanonicalSubsetIsSorted) {
  const Query q({Predicate::Filter(Sb(), 0, 9), Predicate::Filter(Ra(), 1, 2)});
  const auto subset = q.CanonicalSubset(0b11);
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_TRUE(subset[0] < subset[1]);
}

TEST(JoinGraphTest, ConnectedComponentsSplitsByTables) {
  // R.a filter | S.b filter | join R-S: one component together.
  const Query q({Predicate::Filter(Ra(), 1, 5),
                 Predicate::Filter(Sb(), 0, 100),
                 Predicate::Join(Rx(), Sy())});
  const auto all = ConnectedComponents(q.predicates(), 0b111);
  EXPECT_EQ(all.size(), 1u);
  // Without the join, the filters separate.
  const auto split = ConnectedComponents(q.predicates(), 0b011);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], 0b001u);
  EXPECT_EQ(split[1], 0b010u);
}

TEST(JoinGraphTest, SeparabilityDefinition) {
  const Query q({Predicate::Filter(Ra(), 1, 5),
                 Predicate::Filter(Sb(), 0, 100),
                 Predicate::Join(Rx(), Sy()), Predicate::Filter(Tz(), 0, 9)});
  EXPECT_TRUE(IsSeparable(q.predicates(), 0b1111));   // T is isolated
  EXPECT_FALSE(IsSeparable(q.predicates(), 0b0111));  // R-S connected
  EXPECT_TRUE(IsSeparable(q.predicates(), 0b0011));
  EXPECT_FALSE(IsSeparable(q.predicates(), 0b0001));
}

TEST(JoinGraphTest, ComponentsAreCanonicalAndDisjoint) {
  const Query q({Predicate::Filter(Ra(), 1, 5),
                 Predicate::Filter(Sb(), 0, 100),
                 Predicate::Filter(Tz(), 0, 9)});
  const auto comps = ConnectedComponents(q.predicates(), 0b111);
  ASSERT_EQ(comps.size(), 3u);
  PredSet unioned = 0;
  for (PredSet c : comps) {
    EXPECT_EQ(unioned & c, 0u);
    unioned |= c;
  }
  EXPECT_EQ(unioned, 0b111u);
  // Canonical ordering by lowest predicate index.
  EXPECT_EQ(comps[0], 0b001u);
  EXPECT_EQ(comps[1], 0b010u);
  EXPECT_EQ(comps[2], 0b100u);
}

TEST(JoinGraphTest, JoinsConnectTables) {
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Filter(Tz(), 0, 9),
                 Predicate::Join(Sb(), Tz())});
  EXPECT_TRUE(JoinsConnectTables(q.predicates(), 0b101));
  // Filter on T alone does not connect T to R-S.
  EXPECT_FALSE(JoinsConnectTables(q.predicates(), 0b011));
}

TEST(JoinGraphTest, ConnectedSubsets) {
  // Chain: R -j0- S -j1- T. Connected join subsets: {j0}, {j1}, {j0,j1}.
  const Query q({Predicate::Join(Rx(), Sy()), Predicate::Join(Sb(), Tz())});
  const auto subsets =
      ConnectedSubsets(q.predicates(), q.all_predicates(), 2);
  EXPECT_EQ(subsets.size(), 3u);
  const auto size1 = ConnectedSubsets(q.predicates(), q.all_predicates(), 1);
  EXPECT_EQ(size1.size(), 2u);
}

TEST(JoinGraphTest, UnionFindBasics) {
  UnionFind uf(8);
  EXPECT_FALSE(uf.Connected(1, 2));
  uf.Union(1, 2);
  uf.Union(2, 5);
  EXPECT_TRUE(uf.Connected(1, 5));
  EXPECT_FALSE(uf.Connected(0, 1));
}

}  // namespace
}  // namespace condsel
