// Robustness tests: degenerate tables, empty results, extreme inputs.
// Estimation quality is irrelevant here — nothing may crash, and the
// basic invariants (probabilities in [0,1], exactness of ground truth)
// must hold.

#include <gtest/gtest.h>

#include <limits>

#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/exec/evaluator.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "test_util.h"

namespace condsel {
namespace {

TEST(EdgeCaseTest, EmptyTable) {
  Catalog c;
  c.AddTable(test::MakeTable("E", {"a", "x"}, {}));
  c.AddTable(test::MakeTable("F", {"y"}, {{1}, {2}}));
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Filter({0, 0}, 0, 10),
                 Predicate::Join({0, 1}, {1, 0})});
  EXPECT_DOUBLE_EQ(eval.Cardinality(q, q.all_predicates()), 0.0);
  EXPECT_DOUBLE_EQ(eval.TrueSelectivity(q, q.all_predicates()), 0.0);

  // Histograms over the empty table: empty but functional.
  SitBuilder builder(&eval, SitBuildOptions{});
  const Sit sit = builder.Build({0, 0}, {});
  EXPECT_TRUE(sit.histogram.empty());
  EXPECT_DOUBLE_EQ(sit.histogram.RangeSelectivity(0, 100), 0.0);
}

TEST(EdgeCaseTest, AllNullJoinColumn) {
  Catalog c;
  c.AddTable(test::MakeTable(
      "N", {"k"}, {{kNullValue}, {kNullValue}, {kNullValue}}));
  c.AddTable(test::MakeTable("M", {"k"}, {{1}, {2}}));
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Join({0, 0}, {1, 0})});
  EXPECT_DOUBLE_EQ(eval.Cardinality(q, 1), 0.0);

  SitBuilder builder(&eval, SitBuildOptions{});
  SitPool pool;
  pool.Add(builder.Build({0, 0}, {}));
  pool.Add(builder.Build({1, 0}, {}));
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  const double sel = gs.Compute(1).selectivity;
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
  EXPECT_DOUBLE_EQ(sel, 0.0);  // all-NULL side: histogram mass is zero
}

TEST(EdgeCaseTest, SingleRowTables) {
  Catalog c;
  c.AddTable(test::MakeTable("A", {"v"}, {{7}}));
  c.AddTable(test::MakeTable("B", {"v"}, {{7}}));
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Join({0, 0}, {1, 0}),
                 Predicate::Filter({0, 0}, 7, 7)});
  EXPECT_DOUBLE_EQ(eval.Cardinality(q, q.all_predicates()), 1.0);

  SitBuilder builder(&eval, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({q}, 1, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  DiffError diff;
  AtomicSelectivityProvider fa(&matcher, &diff);
  GetSelectivity gs(&q, &fa);
  EXPECT_NEAR(gs.Compute(q.all_predicates()).selectivity, 1.0, 1e-9);
}

TEST(EdgeCaseTest, FilterMatchingNothing) {
  Catalog c = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Filter({0, 0}, 900, 950),
                 Predicate::Join({0, 1}, {1, 0})});
  EXPECT_DOUBLE_EQ(eval.Cardinality(q, q.all_predicates()), 0.0);

  SitBuilder builder(&eval, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({q}, 1, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  EXPECT_DOUBLE_EQ(gs.Compute(q.all_predicates()).selectivity, 0.0);
}

TEST(EdgeCaseTest, SitOverEmptyExpressionResult) {
  // The SIT's generating expression yields zero tuples.
  Catalog c = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  SitBuilder builder(&eval, SitBuildOptions{});
  // Join R.a = T.z: R.a in [1,10], T.z in {100..600}: empty.
  const Predicate join = Predicate::Join({0, 0}, {2, 0});
  const Sit sit = builder.Build({0, 1}, {join});
  EXPECT_TRUE(sit.histogram.empty());
  EXPECT_DOUBLE_EQ(sit.diff, 0.0);

  // Using the pool with that SIT must not crash the DP.
  const Query q({join, Predicate::Filter({0, 1}, 10, 30)});
  SitPool pool = GenerateSitPool({q}, 0, builder);
  pool.Add(sit);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  DiffError diff;
  AtomicSelectivityProvider fa(&matcher, &diff);
  GetSelectivity gs(&q, &fa);
  const double sel = gs.Compute(q.all_predicates()).selectivity;
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

TEST(EdgeCaseTest, SingleBucketHistogram) {
  const Histogram h = BuildMaxDiff({1, 5, 9, 9, 20}, 5.0, 1);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_NEAR(h.RangeSelectivity(1, 20), 1.0, 1e-9);
  EXPECT_GT(h.RangeSelectivity(5, 10), 0.0);
}

TEST(EdgeCaseTest, ConstantColumn) {
  std::vector<int64_t> vals(1000, 42);
  const Histogram h = BuildMaxDiff(vals, 1000.0, 50);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(h.EqualsSelectivity(42), 1.0);
  EXPECT_DOUBLE_EQ(h.EqualsSelectivity(41), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalDistinct(), 1.0);
}

TEST(EdgeCaseTest, ExtremeValueDomains) {
  // Values near the int64 extremes (but away from the NULL sentinel).
  const int64_t big = std::numeric_limits<int64_t>::max() / 4;
  const std::vector<int64_t> vals = {-big, 0, big};
  const Histogram h = BuildMaxDiff(vals, 3.0, 8);
  EXPECT_NEAR(h.RangeSelectivity(-big, big), 1.0, 1e-9);
  EXPECT_GT(h.RangeSelectivity(-big, -big / 2), 0.0);
}

TEST(EdgeCaseTest, PureFilterQueryNoJoins) {
  Catalog c = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Filter({0, 0}, 1, 5),
                 Predicate::Filter({1, 1}, 100, 300),
                 Predicate::Filter({2, 1}, 1, 3)});
  SitBuilder builder(&eval, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({q}, 2, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  // Fully separable: exact product, zero error.
  const SelEstimate e = gs.Compute(q.all_predicates());
  EXPECT_DOUBLE_EQ(e.error, 0.0);
  EXPECT_NEAR(e.selectivity * 480.0,
              eval.Cardinality(q, q.all_predicates()), 1e-6);

  NoSitEstimator no_sit(&matcher);
  GvmEstimator gvm(&matcher);
  EXPECT_NEAR(no_sit.Estimate(q, q.all_predicates()), e.selectivity, 1e-12);
  EXPECT_NEAR(gvm.Estimate(q, q.all_predicates()), e.selectivity, 1e-12);
}

TEST(EdgeCaseTest, MaxPredicateQuery) {
  // A query at a larger predicate count exercises mask arithmetic; use
  // 12 predicates (3 joins + 9 filters) on the tiny catalog.
  Catalog c = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  std::vector<Predicate> preds = {Predicate::Join({0, 1}, {1, 0}),
                                  Predicate::Join({1, 1}, {2, 0})};
  for (int i = 0; i < 5; ++i) {
    preds.push_back(Predicate::Filter({0, 0}, 1, 10 - i));
  }
  for (int i = 0; i < 5; ++i) {
    preds.push_back(Predicate::Filter({2, 1}, 1, 6 - i));
  }
  const Query q(std::move(preds));
  EXPECT_EQ(q.num_predicates(), 12);
  const double card = eval.Cardinality(q, q.all_predicates());
  EXPECT_DOUBLE_EQ(card, test::BruteForceCardinality(c, q, q.all_predicates()));

  SitBuilder builder(&eval, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({q}, 2, builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  DiffError diff;
  AtomicSelectivityProvider fa(&matcher, &diff);
  GetSelectivity gs(&q, &fa);
  const double sel = gs.Compute(q.all_predicates()).selectivity;
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

TEST(EdgeCaseTest, ZeroFilterWorkloadQuery) {
  Catalog c = test::MakeTinyCatalog();
  CardinalityCache cache;
  Evaluator eval(&c, &cache);
  const Query q({Predicate::Join({0, 1}, {1, 0}),
                 Predicate::Join({1, 1}, {2, 0})});
  SitBuilder builder(&eval, SitBuildOptions{});
  const SitPool pool = GenerateSitPool({q}, 2, builder);
  // No filter attrs -> pool is bases only; estimation still works.
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  NIndError n_ind;
  AtomicSelectivityProvider fa(&matcher, &n_ind);
  GetSelectivity gs(&q, &fa);
  const double sel = gs.Compute(q.all_predicates()).selectivity;
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

}  // namespace
}  // namespace condsel
