// Tests for MergeHistograms — the partitioned-statistics merge path.
//
// The regression tests pin the two accounting bugs the merge shipped
// with: distinct counts summed linearly across pieces (double-counting
// values present in every part), and overlap math run through
// double-cast int64 endpoints (losing 1024-wide precision near 2^63 on
// open-ended buckets). The property tests check mass conservation under
// unequal part cardinalities and zero-row parts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "condsel/common/rng.h"
#include "condsel/histogram/histogram.h"
#include "condsel/histogram/histogram_merge.h"

namespace condsel {
namespace {

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

Histogram OneBucket(int64_t lo, int64_t hi, double frequency,
                    double distinct, double cardinality) {
  Bucket b;
  b.lo = lo;
  b.hi = hi;
  b.frequency = frequency;
  b.distinct = distinct;
  return Histogram({b}, cardinality);
}

double MergedDistinct(const Histogram& h) {
  double d = 0.0;
  for (const Bucket& b : h.buckets()) d += b.distinct;
  return d;
}

// Regression (distinct double-count): the same key range lives in every
// part. Values are shared across parts — summing per-piece distincts
// counts each value once per part, and the clamp to the segment width
// then silently reports a fully dense domain. The capped union estimate
// must land strictly below the width.
TEST(HistogramMergeTest, SharedKeyRangeDoesNotDoubleCountDistincts) {
  const Histogram a = OneBucket(0, 99, 1.0, 60.0, 100.0);
  const Histogram b = OneBucket(0, 99, 1.0, 60.0, 100.0);
  const Histogram c = OneBucket(0, 99, 1.0, 60.0, 100.0);
  const Histogram merged = MergeHistograms({&a, &b, &c}, 16);
  ASSERT_EQ(merged.num_buckets(), 1u);
  const double d = merged.buckets()[0].distinct;
  // Pre-fix: 3 * 60 = 180, clamped to the width (exactly 100): the merge
  // claimed every value of the domain is present.
  EXPECT_LT(d, 99.0);
  // Uniform-draw union estimate: 100 * (1 - (1 - 0.6)^3) = 93.6.
  EXPECT_NEAR(d, 93.6, 1e-9);
  // Never below the largest single piece, never above the sum.
  EXPECT_GE(d, 60.0);
  EXPECT_LE(d, 180.0);
}

// A segment only one piece touches keeps that piece's distinct estimate
// exactly — the single-part path must stay bit-identical to the piece.
TEST(HistogramMergeTest, SinglePieceDistinctsUnchanged) {
  const Histogram a = OneBucket(0, 99, 1.0, 60.0, 100.0);
  const Histogram merged = MergeHistograms({&a}, 16);
  ASSERT_EQ(merged.num_buckets(), 1u);
  EXPECT_EQ(merged.buckets()[0].distinct, 60.0);
  EXPECT_EQ(merged.buckets()[0].frequency, 1.0);
}

// Disjoint key ranges share no values: distincts must still add exactly
// (the union estimate only applies within a shared segment).
TEST(HistogramMergeTest, DisjointRangesAddDistincts) {
  const Histogram a = OneBucket(0, 99, 1.0, 50.0, 100.0);
  const Histogram b = OneBucket(100, 199, 1.0, 70.0, 100.0);
  const Histogram merged = MergeHistograms({&a, &b}, 16);
  EXPECT_NEAR(MergedDistinct(merged), 120.0, 1e-9);
}

// Regression (2^63 precision): near INT64_MAX, doubles are 1024 apart, so
// overlap math on double-cast endpoints inflates overlap fractions past 1
// and the merged mass past the weighted piece mass. Integer-clamped
// intersections keep the fractions exact.
TEST(HistogramMergeTest, OpenEndedBucketsNearInt64MaxConserveMass) {
  // Piece A spans two segments; its bucket endpoints collapse to the same
  // double as the segment boundary introduced by piece B.
  const Histogram a = OneBucket(kInt64Max - 1023, kInt64Max, 1.0, 512.0,
                                100.0);
  const Histogram b = OneBucket(kInt64Max - 511, kInt64Max, 1.0, 256.0,
                                100.0);
  const Histogram merged = MergeHistograms({&a, &b}, 16);
  // Each piece carries total frequency 1.0 and weight 0.5: the merged
  // total must be exactly 1.0. Pre-fix it lands near 1.25 (piece A's
  // fractions sum to 1025/1024 + 513/1024 ≈ 1.5).
  EXPECT_NEAR(merged.total_frequency(), 1.0, 1e-9);
  for (const Bucket& bk : merged.buckets()) {
    EXPECT_GE(bk.frequency, 0.0);
    EXPECT_LE(bk.frequency, 1.0 + 1e-12);
  }
}

// A fully open-ended bucket (hi == INT64_MAX) must survive the boundary
// build (no hi + 1 overflow) and keep its mass and width sane.
TEST(HistogramMergeTest, FullyOpenEndedBucketBoundary) {
  const Histogram a = OneBucket(0, kInt64Max, 0.5, 1000.0, 100.0);
  const Histogram b = OneBucket(0, 999, 1.0, 500.0, 100.0);
  const Histogram merged = MergeHistograms({&a, &b}, 16);
  EXPECT_NEAR(merged.total_frequency(), 0.75, 1e-9);
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.buckets().back().hi, kInt64Max);
  for (const Bucket& bk : merged.buckets()) {
    EXPECT_TRUE(std::isfinite(bk.frequency));
    EXPECT_TRUE(std::isfinite(bk.distinct));
    EXPECT_GE(bk.distinct, 0.0);
  }
}

// Mass conservation property: with unequal part cardinalities the merged
// total frequency is the cardinality-weighted mean of the pieces', and
// the merged cardinality is the sum.
TEST(HistogramMergeTest, MassConservationUnequalCardinalities) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Histogram> pieces;
    std::vector<const Histogram*> ptrs;
    double expected_mass = 0.0;
    double total_card = 0.0;
    const int n = 2 + static_cast<int>(rng.NextInRange(0, 3));
    for (int i = 0; i < n; ++i) {
      const int64_t lo = rng.NextInRange(0, 500);
      const int64_t hi = lo + rng.NextInRange(0, 500);
      const double freq =
          static_cast<double>(rng.NextInRange(1, 1000)) / 1000.0;
      const double width = static_cast<double>(hi - lo) + 1.0;
      const double distinct =
          std::max(1.0, width * static_cast<double>(rng.NextInRange(1, 99)) /
                            100.0);
      const double card = static_cast<double>(rng.NextInRange(1, 10000));
      pieces.push_back(OneBucket(lo, hi, freq, distinct, card));
      expected_mass += card * freq;
      total_card += card;
    }
    for (const Histogram& h : pieces) ptrs.push_back(&h);
    const Histogram merged = MergeHistograms(ptrs, 64);
    EXPECT_DOUBLE_EQ(merged.source_cardinality(), total_card);
    EXPECT_NEAR(merged.total_frequency() * total_card, expected_mass,
                1e-6 * expected_mass);
  }
}

// Weight-0 (zero-row) pieces contribute no mass, but their boundaries
// still split segments — and they must not drop segments other pieces
// populate.
TEST(HistogramMergeTest, ZeroRowPartsDropNoSegments) {
  const Histogram empty_part = OneBucket(50, 149, 1.0, 10.0, 0.0);
  const Histogram live_part = OneBucket(0, 199, 1.0, 100.0, 1000.0);
  const Histogram merged = MergeHistograms({&empty_part, &live_part}, 64);
  // All the live mass survives; the zero-row piece adds none.
  EXPECT_NEAR(merged.total_frequency(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(merged.source_cardinality(), 1000.0);
  // The live piece's full domain stays covered (the zero-row piece's
  // boundaries may split it, never truncate it).
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.buckets().front().lo, 0);
  EXPECT_EQ(merged.buckets().back().hi, 199);
  double covered = 0.0;
  for (const Bucket& bk : merged.buckets()) {
    covered += static_cast<double>(bk.hi - bk.lo) + 1.0;
  }
  EXPECT_DOUBLE_EQ(covered, 200.0);
}

// All pieces empty of rows: the merge degrades to an empty histogram with
// zero cardinality rather than dividing by zero.
TEST(HistogramMergeTest, AllZeroRowParts) {
  const Histogram a = OneBucket(0, 9, 1.0, 5.0, 0.0);
  const Histogram b = OneBucket(10, 19, 1.0, 5.0, 0.0);
  const Histogram merged = MergeHistograms({&a, &b}, 16);
  EXPECT_TRUE(merged.empty());
  EXPECT_DOUBLE_EQ(merged.source_cardinality(), 0.0);
}

}  // namespace
}  // namespace condsel
