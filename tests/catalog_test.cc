// Tests for catalog, schema, and storage.

#include <gtest/gtest.h>

#include "condsel/catalog/catalog.h"
#include "condsel/storage/column.h"
#include "condsel/storage/table.h"
#include "test_util.h"

namespace condsel {
namespace {

TEST(ColumnTest, NullHandling) {
  Column c({1, kNullValue, 3});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.CountNonNull(), 2u);
  EXPECT_TRUE(IsNull(c[1]));
  const auto [lo, hi] = c.MinMax();
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 3);
}

TEST(ColumnTest, AllNullMinMaxIsEmptyRange) {
  Column c({kNullValue, kNullValue});
  const auto [lo, hi] = c.MinMax();
  EXPECT_GT(lo, hi);
  EXPECT_EQ(c.CountNonNull(), 0u);
}

TEST(TableTest, AppendRowAndAccess) {
  Table t = test::MakeTable("X", {"p", "q"}, {{1, 2}, {3, 4}});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.value(0, 0), 1);
  EXPECT_EQ(t.value(1, 1), 4);
}

TEST(TableTest, LoadPartSealsColumns) {
  TableSchema s;
  s.name = "Y";
  s.columns = {{"c0", 0, 10, false}};
  Table t(s);
  const PartId id = t.LoadPart({Column({1, 2})});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_parts(), 1u);
  EXPECT_EQ(t.part(0).id(), id);
  EXPECT_EQ(t.tail_rows(), 0u);
}

TEST(SchemaTest, FindColumn) {
  TableSchema s;
  s.name = "Z";
  s.columns = {{"alpha", 0, 1, false}, {"beta", 0, 1, true}};
  EXPECT_EQ(s.FindColumn("alpha"), 0);
  EXPECT_EQ(s.FindColumn("beta"), 1);
  EXPECT_EQ(s.FindColumn("gamma"), -1);
}

TEST(CatalogTest, TableLookup) {
  Catalog c = test::MakeTinyCatalog();
  EXPECT_EQ(c.num_tables(), 3);
  EXPECT_EQ(c.FindTable("R"), 0);
  EXPECT_EQ(c.FindTable("S"), 1);
  EXPECT_EQ(c.FindTable("T"), 2);
  EXPECT_EQ(c.FindTable("nope"), kInvalidTableId);
}

TEST(CatalogTest, ResolveColumn) {
  Catalog c = test::MakeTinyCatalog();
  const ColumnRef ref = c.ResolveColumn("S", "b");
  EXPECT_EQ(ref.table, 1);
  EXPECT_EQ(ref.column, 1);
}

TEST(CatalogTest, CartesianCardinality) {
  Catalog c = test::MakeTinyCatalog();
  EXPECT_DOUBLE_EQ(c.CartesianCardinality({0}), 10.0);
  EXPECT_DOUBLE_EQ(c.CartesianCardinality({0, 1}), 80.0);
  EXPECT_DOUBLE_EQ(c.CartesianCardinality({0, 1, 2}), 480.0);
  EXPECT_DOUBLE_EQ(c.CartesianCardinality({}), 1.0);
}

TEST(CatalogTest, ForeignKeys) {
  Catalog c = test::MakeTinyCatalog();
  c.AddForeignKey({0, 1, 1, 0});
  ASSERT_EQ(c.foreign_keys().size(), 1u);
  EXPECT_EQ(c.foreign_keys()[0].fk_table, 0);
  EXPECT_EQ(c.foreign_keys()[0].pk_table, 1);
}

}  // namespace
}  // namespace condsel
