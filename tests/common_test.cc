// Tests for common utilities: RNG, Zipf sampler, aggregates, and the
// status/annotation plumbing the flow analyzer keys on.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <utility>

#include "condsel/common/macros.h"
#include "condsel/common/rng.h"
#include "condsel/common/stats.h"
#include "condsel/common/status.h"
#include "condsel/common/zipf.h"

namespace condsel {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformityRoughly) {
  Rng rng(5);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, n / 10, n / 100) << "value " << v;
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::map<int64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(rng)];
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k], n / 10, n / 50) << "rank " << k;
  }
}

TEST(ZipfTest, SkewedWhenThetaPositive) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.0);
  std::map<int64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(rng)];
  // Rank 0 should dominate rank 50 by roughly 51x under theta=1.
  EXPECT_GT(counts[0], 10 * counts[50]);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.5);
  double sum = 0.0;
  for (int64_t k = 0; k < 50; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler zipf(20, 0.8);
  for (int64_t k = 1; k < 20; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
}

TEST(AccumulatorTest, EmptyMeanIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(Percentile(xs, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(Percentile(xs, 100.0), 100.0, 1e-9);
  EXPECT_NEAR(Percentile(xs, 50.0), 50.5, 1e-9);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(GeometricMean({5.0}), 5.0, 1e-9);
  // Zeros clamp to the floor instead of collapsing the mean to 0.
  EXPECT_GT(GeometricMean({0.0, 100.0}), 0.0);
}

// ---------------------------------------------------------------------------
// CONDSEL_HOT: annotation-only, zero semantics. The other half of the
// contract -- that the annotation is visible to the static model -- is
// covered by `python3 tools/cpp_model_common.py --self-test` (the
// function-inventory case asserts `hot` is set from the head text).

CONDSEL_HOT int HotIdentity(int v) { return v; }

TEST(MacrosTest, CondselHotExpandsToNothing) {
  EXPECT_EQ(HotIdentity(7), 7);
  // Still an ordinary function: addressable, normal type.
  int (*fp)(int) = &HotIdentity;
  EXPECT_EQ(fp(41), 41);
}

// ---------------------------------------------------------------------------
// StatusIgnored and CONDSEL_RETURN_IF_ERROR: the two sanctioned ways a
// [[nodiscard]] Status leaves a scope without an explicit return.

TEST(StatusSinkTest, StatusIgnoredConsumesStatusAndStatusOr) {
  // Compiles without a [[nodiscard]] warning and has no effect; both the
  // prvalue and moved-lvalue forms used by callers must be accepted.
  StatusIgnored(Status::Internal("discarded on purpose"));
  StatusIgnored(StatusOr<double>(Status::Unavailable("also discarded")));
  Status s = Status::InvalidArgument("moved into the sink");
  StatusIgnored(std::move(s));
}

Status FailIf(bool fail) {
  if (fail) return Status::NotFound("missing");
  return Status::Ok();
}

Status Propagate(bool fail, bool* reached_end) {
  CONDSEL_RETURN_IF_ERROR(FailIf(fail));
  *reached_end = true;
  return Status::Ok();
}

StatusOr<int> PropagateIntoStatusOr(bool fail) {
  // The macro returns a plain Status; it must convert into any
  // StatusOr<T> return type implicitly.
  CONDSEL_RETURN_IF_ERROR(FailIf(fail));
  return StatusOr<int>(42);
}

TEST(StatusSinkTest, ReturnIfErrorPropagatesAndFallsThrough) {
  bool reached = false;
  EXPECT_TRUE(Propagate(false, &reached).ok());
  EXPECT_TRUE(reached);

  reached = false;
  const Status failed = Propagate(true, &reached);
  EXPECT_EQ(failed.code(), StatusCode::kNotFound);
  EXPECT_FALSE(reached);
}

TEST(StatusSinkTest, ReturnIfErrorConvertsIntoStatusOr) {
  const StatusOr<int> ok = PropagateIntoStatusOr(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  const StatusOr<int> err = PropagateIntoStatusOr(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace condsel
