// Tests for the random SPJ workload generator.

#include <gtest/gtest.h>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/join_graph.h"

namespace condsel {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    SnowflakeOptions opt;
    opt.scale = 0.003;
    catalog_ = BuildSnowflake(opt);
    eval_ = std::make_unique<Evaluator>(&catalog_, &cache_);
  }

  Catalog catalog_;
  CardinalityCache cache_;
  std::unique_ptr<Evaluator> eval_;
};

TEST_F(WorkloadTest, ShapeMatchesOptions) {
  WorkloadOptions opt;
  opt.num_queries = 10;
  opt.num_joins = 3;
  opt.num_filters = 3;
  const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
  ASSERT_EQ(workload.size(), 10u);
  for (const Query& q : workload) {
    EXPECT_EQ(SetSize(q.join_predicates()), 3);
    EXPECT_EQ(SetSize(q.filter_predicates()), 3);
    // Join predicates form one connected expression.
    EXPECT_EQ(
        ConnectedComponents(q.predicates(), q.join_predicates()).size(), 1u);
    // Filters land on joined tables only.
    const TableSet joined = q.TablesOfSubset(q.join_predicates());
    for (int i : SetElements(q.filter_predicates())) {
      EXPECT_TRUE(Contains(joined, q.predicate(i).column().table));
    }
  }
}

TEST_F(WorkloadTest, AllJoinCountsWork) {
  for (int j = 1; j <= 7; ++j) {
    WorkloadOptions opt;
    opt.num_queries = 3;
    opt.num_joins = j;
    opt.seed = 100 + static_cast<uint64_t>(j);
    const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
    for (const Query& q : workload) {
      EXPECT_EQ(SetSize(q.join_predicates()), j);
    }
  }
}

TEST_F(WorkloadTest, NonEmptyResults) {
  WorkloadOptions opt;
  opt.num_queries = 15;
  opt.num_joins = 4;
  const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
  for (const Query& q : workload) {
    EXPECT_GT(eval_->Cardinality(q, q.all_predicates()), 0.0)
        << q.ToString(catalog_);
  }
}

TEST_F(WorkloadTest, FilterSelectivityNearTarget) {
  WorkloadOptions opt;
  opt.num_queries = 20;
  opt.num_joins = 3;
  opt.filter_selectivity = 0.05;
  const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
  double total = 0.0;
  int n = 0;
  for (const Query& q : workload) {
    for (int i : SetElements(q.filter_predicates())) {
      total += eval_->TrueSelectivity(q, 1u << i);
      ++n;
    }
  }
  // Stretching can push some ranges wider, but the average should stay in
  // the neighbourhood of the target.
  EXPECT_GT(total / n, 0.02);
  EXPECT_LT(total / n, 0.25);
}

TEST_F(WorkloadTest, FiltersAvoidKeyColumns) {
  WorkloadOptions opt;
  opt.num_queries = 10;
  opt.num_joins = 5;
  const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
  for (const Query& q : workload) {
    for (int i : SetElements(q.filter_predicates())) {
      const ColumnRef col = q.predicate(i).column();
      EXPECT_FALSE(catalog_.table(col.table)
                       .schema()
                       .columns[static_cast<size_t>(col.column)]
                       .is_key);
    }
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadOptions opt;
  opt.num_queries = 5;
  const auto a = GenerateWorkload(catalog_, eval_.get(), opt);
  const auto b = GenerateWorkload(catalog_, eval_.get(), opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].predicates(), b[i].predicates());
  }
}

TEST_F(WorkloadTest, DistinctFilterColumnsWithinQuery) {
  WorkloadOptions opt;
  opt.num_queries = 10;
  opt.num_joins = 4;
  const auto workload = GenerateWorkload(catalog_, eval_.get(), opt);
  for (const Query& q : workload) {
    std::set<std::pair<TableId, ColumnId>> cols;
    for (int i : SetElements(q.filter_predicates())) {
      const ColumnRef c = q.predicate(i).column();
      EXPECT_TRUE(cols.insert({c.table, c.column}).second);
    }
  }
}

}  // namespace
}  // namespace condsel
