// Fuzz target: the catalog / SIT-pool deserializers.
//
// The same input bytes are offered to both readers (their magic numbers
// disambiguate). The readers must never crash, hang, or over-allocate on
// corrupt input, and anything they accept must satisfy the structural
// invariants the rest of the library CHECKs on.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "condsel/io/serialize.h"
#include "fuzz_util.h"

namespace {

void Require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "fuzz_serialize invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const condsel::Catalog catalog = condsel::fuzzing::MakeFuzzCatalog();

  {
    condsel::Catalog out;
    const condsel::IoResult r =
        condsel::ReadCatalogFromBuffer(data, size, &out);
    if (r.ok) {
      for (condsel::TableId t = 0; t < out.num_tables(); ++t) {
        const condsel::Table& table = out.table(t);
        const size_t rows = table.num_rows();
        size_t part_rows = table.tail_rows();
        for (size_t pi = 0; pi < table.num_parts(); ++pi) {
          part_rows += table.part(pi).num_rows();
          Require(table.part(pi).num_columns() ==
                      static_cast<size_t>(table.num_columns()),
                  "accepted catalog with ragged part");
        }
        Require(part_rows == rows,
                "accepted catalog whose parts do not cover its rows");
        for (condsel::ColumnId c = 0; c < table.num_columns(); ++c) {
          Require(table.MaterializeColumn(c).size() == rows,
                  "accepted catalog with ragged columns");
        }
      }
      for (const condsel::ForeignKey& fk : out.foreign_keys()) {
        Require(fk.fk_table >= 0 && fk.fk_table < out.num_tables() &&
                    fk.pk_table >= 0 && fk.pk_table < out.num_tables(),
                "accepted catalog with dangling foreign key");
      }
    } else {
      Require(!r.error.empty(), "rejection must carry a message");
    }
  }

  {
    condsel::SitPool pool;
    const condsel::IoResult r =
        condsel::ReadSitPoolFromBuffer(data, size, catalog, &pool);
    if (r.ok) {
      for (const condsel::Sit& sit : pool.sits()) {
        Require(sit.attr.table >= 0 && sit.attr.table < catalog.num_tables(),
                "accepted SIT bound to a table outside the catalog");
        Require(sit.diff >= 0.0 && sit.diff <= 1.0,
                "accepted SIT with diff outside [0, 1]");
      }
    } else {
      Require(!r.error.empty(), "rejection must carry a message");
    }
  }

  {
    condsel::PartStatsSet stats;
    const condsel::IoResult r =
        condsel::ReadPartStatsFromBuffer(data, size, catalog, &stats);
    if (r.ok) {
      for (const auto& [key, entry] : stats.entries()) {
        Require(entry.table >= 0 && entry.table < catalog.num_tables(),
                "accepted part stats for a table outside the catalog");
        const condsel::Table& table = catalog.table(entry.table);
        const int pi = table.part_index(entry.part);
        Require(pi >= 0, "accepted part stats for an unknown part");
        Require(entry.generation ==
                    table.part(static_cast<size_t>(pi)).generation(),
                "accepted stale part stats");
        Require(entry.pieces.size() ==
                    stats.SpecsOwnedBy(entry.table).size(),
                "accepted part stats misaligned with their spec list");
        for (size_t i = 0; i < entry.pieces.size(); ++i) {
          Require(entry.pieces[i].source_cardinality() >= 0.0,
                  "accepted part-stats piece with bad cardinality");
          Require(entry.diffs[i] >= 0.0 && entry.diffs[i] <= 1.0,
                  "accepted part-stats diff outside [0, 1]");
        }
      }
    } else {
      Require(!r.error.empty(), "rejection must carry a message");
    }
  }
  return 0;
}
