// Shared fixture for the fuzz harnesses.
//
// Every harness runs against the same deterministic three-table mini
// database (small enough that per-input work stays in microseconds, rich
// enough to exercise joins, foreign keys, skew, and multi-table SITs).
// The catalog, the base-histogram pool, and a menu of pre-built SITs are
// constructed once per process; individual fuzz inputs only select among
// them, so harness throughput is spent in the code under test.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/sit/sit.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {
namespace fuzzing {

// R(a, b, s_id), S(pk, c), T(pk2, d); R.s_id -> S.pk and R.b -> T.pk2
// foreign keys. Deterministic skewed data, a few hundred rows total.
Catalog MakeFuzzCatalog();

// Base histograms for every column of `catalog` plus SITs over the FK
// join expressions (single- and two-join generating expressions).
// Element 0..(num base sits - 1) are the base histograms; harnesses that
// need a valid pool must always include those.
struct FuzzStatistics {
  std::vector<Sit> base;   // one per column
  std::vector<Sit> extra;  // join-expression SITs, selectable by mask
};
const FuzzStatistics& GetFuzzStatistics();

// Pool with every base histogram and the subset of extra SITs selected
// by `extra_mask` (bit i selects extra[i]).
SitPool MakeFuzzPool(uint32_t extra_mask);

}  // namespace fuzzing
}  // namespace condsel
