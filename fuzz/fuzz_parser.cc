// Fuzz target: the SPJ parser.
//
// Input bytes are fed verbatim as the SQL text. The harness asserts the
// parser's contract rather than its grammar: it must never crash, and an
// accepted parse must produce a structurally valid query (every predicate
// resolved against the catalog, bitmask invariants intact).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "condsel/parser/parser.h"
#include "condsel/query/predicate_set.h"
#include "fuzz_util.h"

namespace {

void Require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "fuzz_parser invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const condsel::Catalog catalog = condsel::fuzzing::MakeFuzzCatalog();

  const std::string sql(reinterpret_cast<const char*>(data), size);
  const condsel::ParseResult result = condsel::ParseQuery(catalog, sql);
  if (!result.ok) {
    Require(!result.error.empty(), "rejection must carry a message");
    return 0;
  }

  const condsel::Query& q = result.query;
  Require(q.num_predicates() <= condsel::kMaxPredicates,
          "predicate count exceeds kMaxPredicates");
  Require((q.join_predicates() & q.filter_predicates()) == 0,
          "a predicate is both join and filter");
  Require((q.join_predicates() | q.filter_predicates()) ==
              q.all_predicates(),
          "every predicate must be join or filter");
  for (int i = 0; i < q.num_predicates(); ++i) {
    const condsel::Predicate& p = q.predicate(i);
    if (p.is_join()) {
      Require(p.left().table != p.right().table,
              "join predicate within one table");
    } else {
      Require(p.lo() <= p.hi(), "filter with inverted range");
    }
    Require(p.tables() != 0, "predicate covering no table");
    for (int t : condsel::SetElements(p.tables())) {
      Require(t >= 0 && t < catalog.num_tables(),
              "predicate references table outside the catalog");
    }
  }
  return 0;
}
