// Regenerates the checked-in seed corpora under fuzz/corpus/.
//
//   condsel_make_corpus <repo>/fuzz/corpus
//
// Parser seeds are plain SQL against the fixture schema; serialize seeds
// are valid catalog/pool images (plus deliberately damaged variants) so
// mutation starts deep inside the readers instead of dying on the magic
// number; get_selectivity seeds are byte strings that decode (see
// fuzz_get_selectivity.cc) to representative query/budget/pool shapes.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "condsel/exec/cardinality_cache.h"
#include "condsel/exec/evaluator.h"
#include "condsel/io/serialize.h"
#include "condsel/sit/sit_builder.h"
#include "fuzz_util.h"

namespace {

bool WriteBytes(const std::string& path, const std::vector<uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      data.empty() || std::fwrite(data.data(), 1, data.size(), f) ==
                          data.size();
  std::fclose(f);
  return ok;
}

bool WriteText(const std::string& path, const std::string& text) {
  return WriteBytes(path,
                    std::vector<uint8_t>(text.begin(), text.end()));
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::vector<uint8_t> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s CORPUS_ROOT\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];

  // --- parser ---
  const std::string pdir = root + "/parser/";
  WriteText(pdir + "count_all.sql", "SELECT COUNT(*) FROM R");
  WriteText(pdir + "filter.sql",
            "SELECT COUNT(*) FROM R WHERE R.a = 42");
  WriteText(pdir + "range.sql",
            "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 10 AND 60 AND "
            "R.b >= 3");
  WriteText(pdir + "join.sql",
            "SELECT COUNT(*) FROM R, S WHERE R.s_id = S.pk AND S.c < 7");
  WriteText(pdir + "three_way.sql",
            "select count(*) from R, S, T where R.s_id = S.pk and "
            "R.b = T.pk2 and T.d <= 4 and R.a > 20");
  WriteText(pdir + "bad_token.sql",
            "SELECT COUNT(*) FROM R WHERE R.a %% 3");
  WriteText(pdir + "unknown_column.sql",
            "SELECT COUNT(*) FROM R WHERE R.zz = 1");

  // --- serialize ---
  const condsel::Catalog catalog = condsel::fuzzing::MakeFuzzCatalog();
  const std::string sdir = root + "/serialize/";
  const std::string catalog_path = sdir + "catalog.bin";
  if (!condsel::WriteCatalog(catalog, catalog_path).ok) {
    std::fprintf(stderr, "ERROR: cannot write %s\n", catalog_path.c_str());
    return 1;
  }
  {
    const condsel::SitPool pool = condsel::fuzzing::MakeFuzzPool(~0u);
    if (!condsel::WriteSitPool(pool, sdir + "pool.bin").ok) {
      std::fprintf(stderr, "ERROR: cannot write pool.bin\n");
      return 1;
    }
  }
  {
    // Part-stats image for the same catalog: a maintainer-built set over a
    // small workload, so mutation starts from a valid spec/entry layout.
    condsel::Catalog maintained = condsel::fuzzing::MakeFuzzCatalog();
    const std::vector<condsel::Query> workload = {
        condsel::Query({condsel::Predicate::Join(condsel::ColumnRef{0, 2},
                                                 condsel::ColumnRef{1, 0}),
                        condsel::Predicate::Filter(condsel::ColumnRef{0, 0},
                                                   10, 60)})};
    condsel::PartStatsMaintainer maintainer(&maintained, workload,
                                            /*max_join_preds=*/1,
                                            condsel::SitBuildOptions{});
    if (!maintainer.BuildAll().ok() ||
        !condsel::WritePartStats(maintainer.stats(),
                                 sdir + "part_stats.bin").ok) {
      std::fprintf(stderr, "ERROR: cannot write part_stats.bin\n");
      return 1;
    }
    std::vector<uint8_t> bytes = Slurp(sdir + "part_stats.bin");
    std::vector<uint8_t> truncated(
        bytes.begin(),
        bytes.begin() + static_cast<ptrdiff_t>(bytes.size() / 2));
    WriteBytes(sdir + "part_stats_truncated.bin", truncated);
  }
  {
    // Damaged variants: truncation and a flipped interior byte.
    std::vector<uint8_t> bytes = Slurp(catalog_path);
    std::vector<uint8_t> truncated(
        bytes.begin(),
        bytes.begin() + static_cast<ptrdiff_t>(bytes.size() / 3));
    WriteBytes(sdir + "catalog_truncated.bin", truncated);
    if (bytes.size() > 64) bytes[bytes.size() / 2] ^= 0xFF;
    WriteBytes(sdir + "catalog_bitflip.bin", bytes);
  }

  // --- get_selectivity (see the decoder in fuzz_get_selectivity.cc) ---
  const std::string gdir = root + "/get_selectivity/";
  // 2 predicates: join R-S + filter on R.a; full pool; no budget.
  WriteBytes(gdir + "join_filter.bin",
             {2, 0, 0, 1, 0, 30, 80, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 1, 0,
              0xFF, 0xFF, 0xFF, 0xFF});
  // 5 predicates, both joins, tight subproblem budget.
  WriteBytes(gdir + "budgeted.bin",
             {5, 0, 0, 0, 1, 1, 0, 10, 90, 1, 2, 2, 5, 2, 3, 9,
              0xFF, 0x00, 0xFF, 0x00, 3, 7, 1, 1, 0x0F, 0x00, 0x00, 0x00});
  // Single filter, empty extra pool, deadline pressure.
  WriteBytes(gdir + "deadline.bin",
             {1, 1, 2, 4, 11, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0});

  std::fprintf(stderr, "INFO: corpus regenerated under %s\n", root.c_str());
  return 0;
}
