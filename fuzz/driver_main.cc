// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (gcc builds, plain CI runners). Accepts a subset of libFuzzer's command
// line so the same invocation works against either binary:
//
//   <target> CORPUS_DIR_OR_FILE...          replay every corpus input
//   <target> CORPUS... -runs=N              + N deterministic random
//                                             mutations of the corpus
//   <target> CORPUS... -runs=N -seed=S      vary the mutation stream
//   <target> CORPUS... -max_len=N           cap generated input length
//
// Replay mode is wired into ctest (every corpus input must keep passing);
// mutation mode is the bounded "fuzz smoke" CI job. Real coverage-guided
// fuzzing needs the clang libFuzzer build (-DCONDSEL_FUZZ=ON with clang);
// see docs/STATIC_ANALYSIS.md.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <random>
#include <string>
#include <sys/stat.h>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

bool ReadFile(const std::string& path, Input* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

// Collects regular files directly inside `path` (one level, the libFuzzer
// corpus layout) or `path` itself when it is a file.
bool CollectInputs(const std::string& path,
                   std::vector<std::string>* files) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return false;
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return true;
  }
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) return false;
  while (dirent* e = readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    const std::string child = path + "/" + e->d_name;
    if (stat(child.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      files->push_back(child);
    }
  }
  closedir(dir);
  return true;
}

// One mutation step: flip, overwrite, insert, erase, truncate, or splice
// with another corpus input. Deliberately dumb — determinism and speed
// matter more here than coverage guidance, which the libFuzzer build
// provides.
Input Mutate(const Input& base, const std::vector<Input>& corpus,
             std::mt19937* rng, size_t max_len) {
  Input out = base;
  const int kinds = 6;
  const int steps = 1 + static_cast<int>((*rng)() % 4);
  for (int s = 0; s < steps; ++s) {
    switch ((*rng)() % kinds) {
      case 0:  // bit flip
        if (!out.empty()) out[(*rng)() % out.size()] ^= 1u << ((*rng)() % 8);
        break;
      case 1:  // byte overwrite
        if (!out.empty()) {
          out[(*rng)() % out.size()] = static_cast<uint8_t>((*rng)());
        }
        break;
      case 2: {  // insert a byte
        const size_t pos = out.empty() ? 0 : (*rng)() % (out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<uint8_t>((*rng)()));
        break;
      }
      case 3:  // erase a byte
        if (!out.empty()) {
          out.erase(out.begin() +
                    static_cast<std::ptrdiff_t>((*rng)() % out.size()));
        }
        break;
      case 4:  // truncate
        if (!out.empty()) out.resize((*rng)() % out.size());
        break;
      case 5: {  // splice: prefix of this + suffix of another input
        const Input& other = corpus[(*rng)() % corpus.size()];
        if (!other.empty()) {
          const size_t cut = out.empty() ? 0 : (*rng)() % out.size();
          const size_t from = (*rng)() % other.size();
          out.resize(cut);
          out.insert(out.end(), other.begin() +
                     static_cast<std::ptrdiff_t>(from), other.end());
        }
        break;
      }
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  unsigned seed = 1;
  size_t max_len = 4096;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::atol(arg + 6);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<unsigned>(std::atol(arg + 6));
    } else if (std::strncmp(arg, "-max_len=", 9) == 0) {
      max_len = static_cast<size_t>(std::atol(arg + 9));
    } else if (arg[0] == '-') {
      // Ignore unknown libFuzzer-style flags so shared scripts work
      // against both binaries.
      std::fprintf(stderr, "INFO: ignoring flag %s\n", arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [-runs=N] [-seed=S] [-max_len=N] "
                 "CORPUS_DIR_OR_FILE...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (!CollectInputs(p, &files)) {
      std::fprintf(stderr, "ERROR: cannot read %s\n", p.c_str());
      return 2;
    }
  }

  std::vector<Input> corpus;
  for (const std::string& f : files) {
    Input in;
    if (!ReadFile(f, &in)) {
      std::fprintf(stderr, "ERROR: cannot read %s\n", f.c_str());
      return 2;
    }
    corpus.push_back(std::move(in));
  }

  // Replay phase: every corpus input, verbatim.
  for (size_t i = 0; i < corpus.size(); ++i) {
    LLVMFuzzerTestOneInput(corpus[i].data(), corpus[i].size());
  }
  std::fprintf(stderr, "INFO: replayed %zu corpus inputs\n", corpus.size());

  // Mutation phase.
  if (runs > 0 && !corpus.empty()) {
    std::mt19937 rng(seed);
    for (long r = 0; r < runs; ++r) {
      const Input mutated =
          Mutate(corpus[rng() % corpus.size()], corpus, &rng, max_len);
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
    }
    std::fprintf(stderr, "INFO: executed %ld mutated runs (seed %u)\n",
                 runs, seed);
  }
  std::fprintf(stderr, "INFO: done, no crashes\n");
  return 0;
}
