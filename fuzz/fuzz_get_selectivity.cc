// Fuzz target: the getSelectivity DP behind the Estimator facade.
//
// Fuzz bytes are decoded into a small SPJ query (filters and FK joins
// over the fixture catalog), a SIT-pool composition, an EstimationBudget,
// and a predicate subset to estimate. The harness asserts the paper
// implementation's hard contract: estimation never crashes, never hangs,
// and every accepted request yields a finite selectivity in [0, 1] — no
// matter how the budget truncates the search or which statistics exist.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "condsel/api.h"
#include "condsel/optimizer/integration.h"
#include "condsel/selectivity/atomic_provider.h"
#include "condsel/selectivity/error_function.h"
#include "fuzz_util.h"

namespace {

using condsel::ColumnRef;
using condsel::Predicate;

void Require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr,
                 "fuzz_get_selectivity invariant violated: %s\n", what);
    std::abort();
  }
}

// Sequential consumer over the fuzz input; returns 0 when exhausted so
// short inputs decode to a trivial (still valid) request.
class ByteStream {
 public:
  ByteStream(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t Next() { return pos_ < size_ ? data_[pos_++] : 0; }
  uint32_t Next32() {
    return static_cast<uint32_t>(Next()) |
           static_cast<uint32_t>(Next()) << 8 |
           static_cast<uint32_t>(Next()) << 16 |
           static_cast<uint32_t>(Next()) << 24;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const condsel::Catalog catalog = condsel::fuzzing::MakeFuzzCatalog();
  ByteStream in(data, size);

  // --- decode the query: up to 6 predicates over the fixture schema ---
  const struct {
    ColumnRef col;
    int64_t domain_lo, domain_hi;
  } filterable[] = {
      {{0, 0}, 0, 99},  // R.a
      {{0, 1}, 0, 9},   // R.b
      {{1, 1}, 0, 19},  // S.c
      {{2, 1}, 0, 6},   // T.d
  };
  const Predicate joinable[] = {
      Predicate::Join(ColumnRef{0, 2}, ColumnRef{1, 0}),  // R.s_id = S.pk
      Predicate::Join(ColumnRef{0, 1}, ColumnRef{2, 0}),  // R.b = T.pk2
  };

  std::vector<Predicate> preds;
  const int num_preds = 1 + in.Next() % 6;
  for (int i = 0; i < num_preds; ++i) {
    const uint8_t kind = in.Next();
    if (kind % 3 == 0) {
      preds.push_back(joinable[in.Next() % 2]);
    } else {
      const auto& f = filterable[in.Next() % 4];
      const int64_t width = f.domain_hi - f.domain_lo + 1;
      int64_t lo = f.domain_lo + static_cast<int64_t>(in.Next()) % width;
      int64_t hi = f.domain_lo + static_cast<int64_t>(in.Next()) % width;
      if (lo > hi) std::swap(lo, hi);
      preds.push_back(Predicate::Filter(f.col, lo, hi));
    }
  }
  const condsel::Query query(std::move(preds));

  // --- decode pool composition and budget ---
  const condsel::SitPool pool =
      condsel::fuzzing::MakeFuzzPool(in.Next32());
  condsel::EstimationBudget budget;
  budget.max_subproblems = in.Next() % 16;           // 0 = unlimited
  budget.max_atomic_decompositions = in.Next() % 32;  // 0 = unlimited
  // Either no deadline or one so tight it expires mid-search; both must
  // degrade gracefully, never block.
  budget.deadline_seconds = (in.Next() % 4 == 0) ? 1e-9 : 0.0;
  const condsel::Ranking ranking = in.Next() % 2 == 0
                                       ? condsel::Ranking::kDiff
                                       : condsel::Ranking::kNInd;

  condsel::Estimator estimator(&catalog, &pool, ranking, budget);

  // --- drive the DP: full query plus an arbitrary subset ---
  const condsel::PredSet subset = in.Next32() & query.all_predicates();
  for (const condsel::PredSet p : {query.all_predicates(), subset}) {
    const condsel::StatusOr<double> sel =
        estimator.TryEstimateSelectivity(query, p);
    if (!sel.ok()) {
      Require(!sel.status().message().empty(),
              "error status must carry a message");
      continue;
    }
    Require(std::isfinite(*sel), "selectivity must be finite");
    Require(*sel >= 0.0 && *sel <= 1.0, "selectivity outside [0, 1]");

    const condsel::StatusOr<double> card =
        estimator.TryEstimateCardinality(query, p);
    Require(card.ok(), "cardinality must follow a successful selectivity");
    Require(std::isfinite(*card) && *card >= 0.0,
            "cardinality must be finite and non-negative");
  }

  const condsel::StatusOr<std::string> explain = estimator.TryExplain(query);
  if (explain.ok()) {
    Require(!explain.value().empty(), "explanation must be non-empty");
  }

  const condsel::GsStats* stats = estimator.StatsFor(query);
  if (stats != nullptr) {
    Require(stats->degraded_subproblems == 0 || !budget.unlimited() ||
                stats->budget_exhausted == false,
            "degradation recorded without a budget");
  }

  // --- the optimizer-coupled path shares the contract ---
  {
    condsel::SitMatcher matcher(&pool);
    matcher.BindQuery(&query);
    condsel::DiffError error_fn;
    condsel::AtomicSelectivityProvider approx(&matcher, &error_fn);
    condsel::OptimizerCoupledEstimator coupled(&query, &approx);
    const condsel::StatusOr<condsel::SelEstimate> est =
        coupled.TryEstimate(query.all_predicates());
    if (est.ok()) {
      Require(std::isfinite(est.value().selectivity) &&
                  est.value().selectivity >= 0.0 &&
                  est.value().selectivity <= 1.0,
              "coupled selectivity outside [0, 1]");
    }
  }
  return 0;
}
