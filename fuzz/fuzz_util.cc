#include "fuzz_util.h"

#include <cstdlib>

#include "condsel/exec/cardinality_cache.h"
#include "condsel/exec/evaluator.h"
#include "condsel/sit/sit_builder.h"

namespace condsel {
namespace fuzzing {
namespace {

Table MakeTable(const char* name,
                std::vector<ColumnSchema> columns,
                const std::vector<std::vector<int64_t>>& data) {
  TableSchema schema;
  schema.name = name;
  schema.columns = std::move(columns);
  Table table(schema);
  std::vector<Column> cols;
  cols.reserve(data.size());
  for (const auto& values : data) cols.emplace_back(values);
  table.LoadPart(std::move(cols));
  return table;
}

Catalog BuildCatalog() {
  Catalog catalog;

  // R: 240 rows; a skewed over [0, 99], b uniform over [0, 9] (doubles as
  // FK to T), s_id FK into S with some repetition.
  std::vector<int64_t> r_a, r_b, r_sid;
  for (int i = 0; i < 240; ++i) {
    r_a.push_back((i * i) % 100);        // quadratic-residue skew
    r_b.push_back(i % 10);
    r_sid.push_back((i * 7) % 60);
  }
  catalog.AddTable(MakeTable(
      "R",
      {{"a", 0, 99, false}, {"b", 0, 9, false}, {"s_id", 0, 59, true}},
      {r_a, r_b, r_sid}));

  // S: 60 rows; pk dense, c has heavy skew (half the rows share value 0).
  std::vector<int64_t> s_pk, s_c;
  for (int i = 0; i < 60; ++i) {
    s_pk.push_back(i);
    s_c.push_back(i % 2 == 0 ? 0 : i % 20);
  }
  catalog.AddTable(MakeTable(
      "S", {{"pk", 0, 59, true}, {"c", 0, 19, false}}, {s_pk, s_c}));

  // T: 10 rows keyed by R.b's domain.
  std::vector<int64_t> t_pk, t_d;
  for (int i = 0; i < 10; ++i) {
    t_pk.push_back(i);
    t_d.push_back((i * 3) % 7);
  }
  catalog.AddTable(MakeTable(
      "T", {{"pk2", 0, 9, true}, {"d", 0, 6, false}}, {t_pk, t_d}));

  catalog.AddForeignKey({/*fk_table=*/0, /*fk_column=*/2,
                         /*pk_table=*/1, /*pk_column=*/0});
  catalog.AddForeignKey({/*fk_table=*/0, /*fk_column=*/1,
                         /*pk_table=*/2, /*pk_column=*/0});
  return catalog;
}

}  // namespace

Catalog MakeFuzzCatalog() { return BuildCatalog(); }

const FuzzStatistics& GetFuzzStatistics() {
  static const FuzzStatistics* stats = [] {
    static const Catalog catalog = BuildCatalog();
    static CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);
    SitBuilder builder(&evaluator, SitBuildOptions{});

    auto* s = new FuzzStatistics();
    for (TableId t = 0; t < catalog.num_tables(); ++t) {
      for (ColumnId c = 0; c < catalog.table(t).num_columns(); ++c) {
        s->base.push_back(builder.Build(ColumnRef{t, c}, {}));
      }
    }

    const Predicate join_rs =
        Predicate::Join(ColumnRef{0, 2}, ColumnRef{1, 0});
    const Predicate join_rt =
        Predicate::Join(ColumnRef{0, 1}, ColumnRef{2, 0});
    for (const Sit& sit : builder.BuildMany(
             {ColumnRef{0, 0}, ColumnRef{1, 1}}, {join_rs})) {
      s->extra.push_back(sit);
    }
    for (const Sit& sit : builder.BuildMany(
             {ColumnRef{0, 0}, ColumnRef{2, 1}}, {join_rt})) {
      s->extra.push_back(sit);
    }
    for (const Sit& sit : builder.BuildMany(
             {ColumnRef{0, 0}, ColumnRef{1, 1}, ColumnRef{2, 1}},
             {join_rs, join_rt})) {
      s->extra.push_back(sit);
    }
    return s;
  }();
  return *stats;
}

SitPool MakeFuzzPool(uint32_t extra_mask) {
  const FuzzStatistics& stats = GetFuzzStatistics();
  SitPool pool;
  for (const Sit& sit : stats.base) pool.Add(sit);
  for (size_t i = 0; i < stats.extra.size(); ++i) {
    if ((extra_mask >> i) & 1u) pool.Add(stats.extra[i]);
  }
  return pool;
}

}  // namespace fuzzing
}  // namespace condsel
